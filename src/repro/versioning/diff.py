"""Deterministic content hashing of the distributed object graph.

Every object's *versioned content* — identity, kind, size, version tag,
attachment edges, alliance memberships and the policy configuration it
runs under — is serialized into a canonical record and hashed with
SHA-256.  Node hashes and the graph digest are Merkle-style: a node's
content hash covers the object hashes of its residents, and the graph
digest covers all object (or node) hashes, so any single version flip
changes exactly one leaf and every digest above it.

Two graph-level digests exist because two different questions are asked:

* :func:`compute_graph_digest` (over *object* hashes) is
  placement-independent — objects keep migrating in space while a
  deploy runs, and a rollback must restore this digest bit-identically
  even though nothing ever moves back;
* the per-node hashes of :func:`snapshot_graph` (and their combined
  ``placement_digest``) additionally pin *where* everything lives —
  the property suite uses them on quiescent graphs where bit-identical
  means "nothing changed at all".

Mutable runtime bookkeeping (migration counts, transit state, lock
holders) is deliberately excluded: those change with traffic, not with
version, and hashing them would make "the deploy rolled back cleanly"
unobservable on a live system.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager
from repro.runtime.objects import DistributedObject

#: Bump when the record layout changes: old hashes must not collide
#: with new ones across code versions.
HASH_SCHEMA = 1


def _canonical(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace drift."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def _sha256(payload: Any) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


def object_version_record(
    obj: DistributedObject,
    attachments: Optional[AttachmentManager] = None,
    alliances: Optional[AllianceManager] = None,
    policy_config: Optional[Mapping[str, Any]] = None,
    version: Optional[str] = None,
) -> Dict[str, Any]:
    """The canonical versioned-content record of one object.

    ``version`` overrides the object's current tag — the planner uses
    this to compute *target* hashes without touching the live object.
    Attachment edges are recorded undirected and sorted; alliance
    membership as sorted alliance ids; ``policy_config`` verbatim
    (canonicalized at hash time).
    """
    edges: List[Tuple[int, Any]] = []
    if attachments is not None:
        for neighbor, context in attachments.edges_of(obj):
            edges.append((neighbor, context if context is not None else -1))
    memberships: List[int] = []
    if alliances is not None:
        memberships = [
            a.alliance_id for a in alliances.alliances if obj in a
        ]
    return {
        "schema": HASH_SCHEMA,
        "object_id": obj.object_id,
        "name": obj.name,
        "kind": obj.kind.value,
        "fixed": obj.fixed,
        "size": obj.size,
        "version": version if version is not None else obj.version,
        "attachments": sorted(edges),
        "alliances": sorted(memberships),
        "policy": dict(policy_config) if policy_config else {},
    }


def compute_object_hash(record: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of one object record."""
    return _sha256(record)


def _combine(parts: List[Tuple[Any, str]]) -> str:
    """Merkle combine: hash the sorted (key, leaf-hash) pairs."""
    return _sha256(sorted(parts))


def compute_node_content_hash(
    system,
    node_id: int,
    attachments: Optional[AttachmentManager] = None,
    alliances: Optional[AllianceManager] = None,
    policy_config: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content hash of one node: the object hashes of its residents.

    Objects in transit belong to no node's hash (mirroring the
    registry's residency invariant); an empty node hashes to the
    digest of an empty list, which is still schema-stamped.
    """
    parts = [
        (obj.object_id, compute_object_hash(
            object_version_record(obj, attachments, alliances, policy_config)
        ))
        for obj in system.registry.objects_at(node_id)
    ]
    return _combine(parts)


def compute_graph_digest(object_hashes: Mapping[int, str]) -> str:
    """Placement-independent graph digest over per-object hashes."""
    return _combine(list(object_hashes.items()))


@dataclass
class GraphSnapshot:
    """One consistent hash view of the whole object graph."""

    #: Simulated time the snapshot was taken.
    taken_at: float
    #: object id -> content hash.
    object_hashes: Dict[int, str] = field(default_factory=dict)
    #: object id -> version tag at snapshot time.
    object_versions: Dict[int, str] = field(default_factory=dict)
    #: node id -> node content hash (over resident objects).
    node_hashes: Dict[int, str] = field(default_factory=dict)
    #: Placement-independent digest over all object hashes.
    root_digest: str = ""
    #: Placement-pinning digest over all node hashes.
    placement_digest: str = ""

    def diff(self, other: "GraphSnapshot") -> List[int]:
        """Object ids whose hash differs between the two snapshots.

        Objects present in only one snapshot count as changed.
        """
        changed = []
        for oid in sorted(set(self.object_hashes) | set(other.object_hashes)):
            if self.object_hashes.get(oid) != other.object_hashes.get(oid):
                changed.append(oid)
        return changed

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoints embed this)."""
        return {
            "taken_at": self.taken_at,
            "object_hashes": {str(k): v for k, v in self.object_hashes.items()},
            "object_versions": {
                str(k): v for k, v in self.object_versions.items()
            },
            "node_hashes": {str(k): v for k, v in self.node_hashes.items()},
            "root_digest": self.root_digest,
            "placement_digest": self.placement_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        return cls(
            taken_at=float(data["taken_at"]),
            object_hashes={
                int(k): v for k, v in data["object_hashes"].items()
            },
            object_versions={
                int(k): v for k, v in data["object_versions"].items()
            },
            node_hashes={int(k): v for k, v in data["node_hashes"].items()},
            root_digest=data["root_digest"],
            placement_digest=data["placement_digest"],
        )


def snapshot_graph(
    system,
    attachments: Optional[AttachmentManager] = None,
    alliances: Optional[AllianceManager] = None,
    policy_config: Optional[Mapping[str, Any]] = None,
) -> GraphSnapshot:
    """Hash every object and node of ``system`` into one snapshot."""
    object_hashes: Dict[int, str] = {}
    object_versions: Dict[int, str] = {}
    for obj in system.registry.objects:
        object_hashes[obj.object_id] = compute_object_hash(
            object_version_record(obj, attachments, alliances, policy_config)
        )
        object_versions[obj.object_id] = obj.version
    node_hashes = {
        node.node_id: _combine(
            [
                (oid, object_hashes[oid])
                for oid in sorted(node.resident_ids)
            ]
        )
        for node in system.registry.nodes
    }
    return GraphSnapshot(
        taken_at=system.env.now,
        object_hashes=object_hashes,
        object_versions=object_versions,
        node_hashes=node_hashes,
        root_digest=compute_graph_digest(object_hashes),
        placement_digest=_combine(list(node_hashes.items())),
    )
