"""Fragmented objects under conflicting migration control (§5 outlook).

Fragmentation [MGL+94] splits one logical object into K fragments that
can live on different nodes.  The paper's closing question applies here
too: do non-monolithic conflicts hurt fragmented objects the way they
hurt monolithic ones — and does granularity change the picture?

The model: each logical object is K fragments of size 1/K (so a
fragment's transfer time is M/K — the state is split, not duplicated).
A client's move-block touches a random subset of fragments (a fraction
``touched_fraction`` of K), issues one move per touched fragment *in
parallel* through the configured migration policy, performs its N
invocations against random touched fragments, and ends all the blocks.

Granularity trade-off this exposes (``bench_outlook_fragmentation``):

* finer fragments mean a conflict steals less state and blocks callers
  for M/K instead of M — degradation shrinks with K;
* but every touched fragment costs its own move request message, so
  overhead grows with K — at low concurrency coarse objects win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import MetricsCollector
from repro.core.moveblock import MoveBlock
from repro.core.policies.registry import make_policy
from repro.errors import ConfigurationError
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.stopping import StoppingConfig
from repro.workload.generator import BlockTimingGenerator
from repro.workload.params import SimulationParameters


@dataclass(frozen=True)
class FragmentationParameters:
    """Configuration of one fragmentation-study cell."""

    nodes: int = 27
    clients: int = 10
    #: Number of logical objects clients share.
    logical_objects: int = 3
    #: Fragments per logical object (K).  K=1 is the monolithic case.
    fragments_per_object: int = 4
    #: Fraction of a logical object's fragments a block touches.
    touched_fraction: float = 0.5
    #: Transfer time of a whole (size-1) logical object; a fragment
    #: takes migration_duration / K.
    migration_duration: float = 6.0
    mean_calls_per_block: float = 8.0
    mean_intercall_time: float = 1.0
    mean_interblock_time: float = 30.0
    policy: str = "placement"
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.logical_objects < 1:
            raise ConfigurationError("need at least one logical object")
        if self.fragments_per_object < 1:
            raise ConfigurationError("fragments_per_object must be >= 1")
        if not 0.0 < self.touched_fraction <= 1.0:
            raise ConfigurationError("touched_fraction must be in (0, 1]")
        if self.migration_duration < 0:
            raise ConfigurationError("migration_duration must be >= 0")
        if self.mean_calls_per_block <= 0:
            raise ConfigurationError("mean_calls_per_block must be > 0")

    @property
    def touched_count(self) -> int:
        """Fragments touched per block (at least one)."""
        return max(
            1, math.ceil(self.touched_fraction * self.fragments_per_object)
        )


@dataclass
class FragmentationResult:
    """Outcome of one fragmentation cell."""

    params: FragmentationParameters
    mean_communication_time_per_call: float
    mean_call_duration: float
    mean_migration_time_per_call: float
    raw: Dict = field(default_factory=dict)


class FragmentationWorkload:
    """Builds and runs one fragmentation-study cell."""

    CHUNK = 2_000.0
    MAX_TIME = 2_000_000.0

    def __init__(
        self,
        params: FragmentationParameters,
        stopping: Optional[StoppingConfig] = None,
    ):
        params.validate()
        self.params = params
        self.system = DistributedSystem(
            nodes=params.nodes,
            seed=params.seed,
            migration_duration=params.migration_duration,
        )
        self.metrics = MetricsCollector(stopping)
        # K fragments per logical object, each 1/K of the state.
        k = params.fragments_per_object
        self.fragments: Dict[int, List[DistributedObject]] = {}
        for j in range(params.logical_objects):
            self.fragments[j] = [
                self.system.create_server(
                    node=(j * k + i) % params.nodes,
                    name=f"obj{j}-frag{i}",
                    size=1.0 / k,
                )
                for i in range(k)
            ]
        self.clients = [
            self.system.create_client(node=i % params.nodes)
            for i in range(params.clients)
        ]
        self.policy = make_policy(params.policy, self.system)
        self._started = False

    # -- client behaviour -----------------------------------------------------------

    def _one_move(self, block: MoveBlock):
        yield from self.policy.move(block)

    def client_process(self, index: int):
        """One client's endless multi-fragment move-block loop."""
        client = self.clients[index]
        sim_params = SimulationParameters(
            mean_calls_per_block=self.params.mean_calls_per_block,
            mean_intercall_time=self.params.mean_intercall_time,
            mean_interblock_time=self.params.mean_interblock_time,
            migration_duration=self.params.migration_duration,
        )
        timing = BlockTimingGenerator(
            sim_params, self.system.streams.stream(f"frag.client.{index}.t")
        )
        picker = self.system.streams.stream(f"frag.client.{index}.p")
        env = self.system.env

        while True:
            plan = timing.next_plan()
            if plan.lead_time > 0:
                yield env.timeout(plan.lead_time)

            logical = picker.integer(0, self.params.logical_objects)
            pool = list(self.fragments[logical])
            picker.shuffle(pool)
            touched = pool[: self.params.touched_count]

            # Parallel move phase: one move-block per touched fragment.
            blocks = [
                MoveBlock(client.node_id, fragment) for fragment in touched
            ]
            move_start = env.now
            procs = [
                env.process(self._one_move(b), name=f"frag-move-{b.block_id}")
                for b in blocks
            ]
            yield env.all_of(procs)

            # Master accounting block: the move phase's wall-clock cost
            # is amortized over the logical block's calls (§4.2.1).
            master = MoveBlock(client.node_id, touched[0])
            master.granted = any(b.granted for b in blocks)
            master.migration_cost = env.now - move_start

            for gap in plan.intercall_times:
                if gap > 0:
                    yield env.timeout(gap)
                fragment = picker.choice(touched)
                result = yield from self.system.invocations.invoke(
                    client.node_id, fragment
                )
                master.record_call(result.duration)

            for block in blocks:
                yield from self.policy.end(block)
            master.ended_at = env.now
            self.metrics.record_block(master)

    # -- execution ----------------------------------------------------------------------

    def start(self) -> None:
        """Launch every client process (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(len(self.clients)):
            self.system.env.process(
                self.client_process(i), name=f"frag-client-{i}"
            )

    def run(self) -> FragmentationResult:
        """Simulate until the stopping rule fires; return the metrics."""
        self.start()
        env = self.system.env
        while True:
            env.run(until=env.now + self.CHUNK)
            if self.metrics.should_stop() or env.now >= self.MAX_TIME:
                break
        self.metrics.finalize(self.policy)
        m = self.metrics
        return FragmentationResult(
            params=self.params,
            mean_communication_time_per_call=m.mean_communication_time_per_call,
            mean_call_duration=m.mean_call_duration,
            mean_migration_time_per_call=m.mean_migration_time_per_call,
            raw={
                "metrics": m.summary(),
                "policy": self.policy.stats(),
                "migrations": self.system.migrations.migration_count,
            },
        )


def run_fragmentation_cell(
    params: FragmentationParameters,
    stopping: Optional[StoppingConfig] = None,
) -> FragmentationResult:
    """Convenience one-shot wrapper."""
    return FragmentationWorkload(params, stopping=stopping).run()
