"""Fragmented objects in non-monolithic systems — the §5 outlook.

Sibling of :mod:`repro.replication`: studies whether the paper's
conflict story extends to fragmentation [MGL+94], and how fragment
granularity trades per-conflict damage against per-block message
overhead.  See ``benchmarks/bench_outlook_fragmentation.py``.
"""

from repro.fragmentation.workload import (
    FragmentationParameters,
    FragmentationResult,
    FragmentationWorkload,
    run_fragmentation_cell,
)

__all__ = [
    "FragmentationParameters",
    "FragmentationResult",
    "FragmentationWorkload",
    "run_fragmentation_cell",
]
