"""The collocation-vs-distribution availability experiment (§2.2).

C clients share a *group* of related server objects (think a document,
its index entry, and its ACL) and issue two kinds of operations:

* *service accesses* (fraction ``1 - group_op_fraction``): the client
  needs any one member (the members back each other up, e.g. replicated
  directory instances) — it calls a preferred member and *fails over*
  to another live one if the preferred member's node is down;
* *group operations*: a chained call through every member (the client
  invokes the first member, which nests a call to the second, ...).

Two placements are compared:

``collocated``
    The whole group on one node: a group operation's internal hops are
    free, but one node failure takes every member down at once — there
    is nothing to fail over to.
``spread``
    Members round-robin across distinct nodes: every chain hop is a
    remote round trip, but a service access survives any single
    failure (the paper's "better failure coverage").

This is §2.2's tension quantified: "availability calls for
distributing objects, while performance calls for collocating them."
With rare failures and chain-heavy traffic, collocation wins (free
internal hops).  With frequent failures and independent accesses,
spreading wins (a failure blocks only the touched member instead of
everything).  Which placement is right depends on the usage pattern —
the same lesson the migration study teaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.availability.faults import FaultInjector
from repro.errors import ConfigurationError
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.stats import RunningStats
from repro.sim.stopping import PrecisionStopping, StoppingConfig


@dataclass(frozen=True)
class AvailabilityParameters:
    """Configuration of one availability-study cell."""

    nodes: int = 12
    clients: int = 6
    #: Objects per group (all touched by every operation).
    group_size: int = 3
    #: Placement: "collocated" or "spread".
    placement: str = "spread"
    #: Mean up-time per node (exponential).
    mttf: float = 1_000.0
    #: Mean repair time per node (exponential).
    mttr: float = 50.0
    #: Mean gap between a client's operations.
    mean_interop_time: float = 10.0
    #: Fraction of operations that are chained group operations; the
    #: rest are single-member accesses.
    group_op_fraction: float = 0.3
    #: Disable failures entirely (the performance-only baseline).
    faults_enabled: bool = True
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.nodes < 2:
            raise ConfigurationError("need at least two nodes")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.group_size < 1:
            raise ConfigurationError("group_size must be >= 1")
        if self.placement not in ("collocated", "spread"):
            raise ConfigurationError(
                f"placement must be 'collocated' or 'spread', got "
                f"{self.placement!r}"
            )
        if self.mttf <= 0 or self.mttr <= 0:
            raise ConfigurationError("mttf and mttr must be positive")
        if self.mean_interop_time < 0:
            raise ConfigurationError("mean_interop_time must be >= 0")
        if not 0.0 <= self.group_op_fraction <= 1.0:
            raise ConfigurationError("group_op_fraction must be in [0, 1]")


@dataclass
class AvailabilityResult:
    """Outcome of one availability cell."""

    params: AvailabilityParameters
    mean_op_time: float
    mean_blocked_time: float
    failures: int
    raw: Dict = field(default_factory=dict)


class AvailabilityWorkload:
    """Builds and runs one availability-study cell."""

    CHUNK = 5_000.0
    MAX_TIME = 3_000_000.0

    def __init__(
        self,
        params: AvailabilityParameters,
        stopping: Optional[StoppingConfig] = None,
    ):
        params.validate()
        self.params = params
        self.system = DistributedSystem(nodes=params.nodes, seed=params.seed)
        self.group: List[DistributedObject] = [
            self.system.create_server(
                node=self._member_node(i), name=f"member-{i}"
            )
            for i in range(params.group_size)
        ]
        self.faults = FaultInjector(
            self.system, mttf=params.mttf, mttr=params.mttr
        )
        self.op_times = RunningStats()
        self.blocked_times = RunningStats()
        self._chain_blocked = 0.0
        self.stopping = PrecisionStopping(stopping or StoppingConfig())
        self._started = False

    def _member_node(self, index: int) -> int:
        if self.params.placement == "collocated":
            # The whole group lives on the last node (clients start at
            # node 0, so the group is remote to most of them either way).
            return self.params.nodes - 1
        # Spread: round-robin over the non-client end of the node range.
        return (self.params.nodes - 1 - index) % self.params.nodes

    def _pick_live_member(self, stream):
        """Preferred member, or the first live alternative (failover).

        Members are interchangeable service instances for this access
        type; knowing which nodes are up is free (the same idealized
        knowledge the immediate-update locator grants for locations).
        If every member is down the preferred one is returned and the
        caller blocks on its recovery.
        """
        preferred = stream.integer(0, len(self.group))
        if not self.params.faults_enabled:
            return self.group[preferred]
        for offset in range(len(self.group)):
            member = self.group[(preferred + offset) % len(self.group)]
            if not self.faults.is_down(member.node_id):
                return member
        return self.group[preferred]

    def _invoke(self, node: int, member, body=None):
        """Fault-aware (or plain) invocation; returns blocked time."""
        if self.params.faults_enabled:
            _, blocked = yield from self.faults.invoke(node, member, body=body)
            return blocked
        yield from self.system.invocations.invoke(node, member, body=body)
        return 0.0

    def _chain_body(self, depth: int):
        """Nested-call body: member[depth] calls member[depth + 1]...

        This is where collocation pays: with the whole group on one
        node every nested hop is free.
        """
        if depth >= len(self.group):
            return None

        def body(callee_node: int):
            blocked = yield from self._invoke(
                callee_node, self.group[depth], body=self._chain_body(depth + 1)
            )
            self._chain_blocked += blocked

        return body

    def client_process(self, index: int):
        """One client's endless mixed-operation loop."""
        node = index % self.params.nodes
        stream = self.system.streams.stream(f"avail.client.{index}")
        env = self.system.env
        while True:
            gap = stream.exponential(self.params.mean_interop_time)
            if gap > 0:
                yield env.timeout(gap)
            start = env.now
            self._chain_blocked = 0.0
            if stream.uniform() < self.params.group_op_fraction:
                # Group operation: chained call through every member.
                blocked = yield from self._invoke(
                    node, self.group[0], body=self._chain_body(1)
                )
                blocked += self._chain_blocked
            else:
                # Service access: any live member will do (failover).
                member = self._pick_live_member(stream)
                blocked = yield from self._invoke(node, member)
            elapsed = env.now - start
            self.op_times.add(elapsed)
            self.blocked_times.add(blocked)
            self.stopping.add(elapsed)

    def start(self) -> None:
        """Launch fault injection and every client process (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.params.faults_enabled:
            self.faults.start()
        for i in range(self.params.clients):
            self.system.env.process(
                self.client_process(i), name=f"avail-client-{i}"
            )

    def run(self) -> AvailabilityResult:
        """Simulate until the stopping rule fires; return the metrics."""
        self.start()
        env = self.system.env
        while True:
            env.run(until=env.now + self.CHUNK)
            if self.stopping.should_stop() or env.now >= self.MAX_TIME:
                break
        return AvailabilityResult(
            params=self.params,
            mean_op_time=self.op_times.mean if self.op_times.count else 0.0,
            mean_blocked_time=(
                self.blocked_times.mean if self.blocked_times.count else 0.0
            ),
            failures=self.faults.failures,
            raw={
                "operations": self.op_times.count,
                "stopping": self.stopping.summary(),
            },
        )


def run_availability_cell(
    params: AvailabilityParameters,
    stopping: Optional[StoppingConfig] = None,
) -> AvailabilityResult:
    """Convenience one-shot wrapper."""
    return AvailabilityWorkload(params, stopping=stopping).run()
