"""Chaos campaigns: scripted fault scenarios under invariant monitoring.

The fault-tolerance study answers "how much does performance degrade
under random failures?".  A chaos campaign answers the harder question
"does the system stay *safe* under adversarial failure timing?" — crash
storms that take out several nodes at once, partitions that roll across
the cluster silencing one node after another, links that flap faster
than the failure detector's timeout, and crashes aimed precisely at
nodes with a migration in flight.

A campaign is declarative: a :class:`ChaosScenario` is a named tuple of
frozen action records (:class:`CrashStorm`, :class:`RollingPartition`,
:class:`FlappingLink`, :class:`CrashDuringMigration`).  The
:class:`ChaosOrchestrator` turns each action into a simulation process
whose randomness (victim choice, link choice) comes from dedicated
``"chaos.<scenario>.<idx>"`` streams — the same seed replays the same
havoc, and adding chaos never perturbs the workload's own draws.

Safety is checked *during* the run, not after: a
:class:`~repro.sim.monitor.InvariantMonitor` re-evaluates the core
invariants every few simulated time units —

* every object has exactly one home (registry consistency);
* no object is lost: anything in transit reinstalls (possibly back at
  its origin) within the bounded transfer-plus-rollback window;
* lock bookkeeping is consistent and no broken block still holds locks;
* no invocation ever executes on a crashed node.

On violation the campaign fails with an
:class:`~repro.errors.InvariantViolationError` carrying the tail of a
:class:`~repro.sim.trace.RingTracer` — enough recent events to diagnose
the failure without re-running.

Run one from the CLI::

    repro-experiment chaos --scenario mayhem --seed 3
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple, Union

from repro.availability.faulttolerance import (
    FaultToleranceParameters,
    FaultToleranceResult,
    FaultToleranceWorkload,
)
from repro.errors import (
    ConfigurationError,
    InvariantViolationError,
    ProcessError,
)
from repro.network.faults import LinkFaultModel
from repro.runtime.retry import RetryPolicy
from repro.sim.monitor import InvariantMonitor
from repro.sim.rng import Stream
from repro.sim.trace import RingTracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry


# ---------------------------------------------------------------------------
# Scenario actions (frozen, declarative)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashStorm:
    """Crash several nodes near-simultaneously, in repeated waves."""

    #: Simulated time of the first wave.
    at: float = 100.0
    #: Nodes taken down per wave (capped so at least the monitor node
    #: and one other node stay up).
    victims: int = 2
    #: How long each victim stays down.
    down_for: float = 60.0
    #: Number of waves.
    waves: int = 3
    #: Gap between wave starts.
    wave_gap: float = 400.0


@dataclass(frozen=True)
class RollingPartition:
    """Cut one node after another off the rest of the network.

    Each round isolates a single node for ``hold`` time units (its
    heartbeats are silenced, so the detector *falsely* suspects it),
    then restores exactly the links it cut — never a blanket heal, so
    concurrently flapping links stay down.
    """

    #: Simulated time of the first round.
    start: float = 150.0
    #: How long each node stays isolated.
    hold: float = 40.0
    #: Gap between the end of one round and the start of the next.
    gap: float = 120.0
    #: Number of nodes isolated, one after the other.
    rounds: int = 4


@dataclass(frozen=True)
class FlappingLink:
    """One link going down and up faster than detection settles."""

    #: Simulated time the flapping starts.
    start: float = 50.0
    #: Up-time between flaps.
    up_for: float = 30.0
    #: Down-time of each flap.
    down_for: float = 15.0
    #: Number of down/up cycles.
    flaps: int = 6
    #: The (a, b) node pair; None = drawn from the chaos stream.
    link: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class CrashDuringMigration:
    """Crash a migration participant while the object is on the wire.

    Polls :attr:`~repro.runtime.migration.MigrationService.
    active_transfers` and, the moment a transfer appears, crashes the
    chosen participant — the abort-and-rollback path must reinstall the
    object at its origin with nothing lost.
    """

    #: Simulated time the watcher arms itself.
    arm_at: float = 50.0
    #: How long the crashed participant stays down.
    down_for: float = 60.0
    #: How many transfers to ambush.
    times: int = 2
    #: Polling period while armed.
    poll: float = 1.0
    #: Which participant to crash: "target", "origin" or "either".
    victim: str = "target"


@dataclass(frozen=True)
class CrashDuringDeploy:
    """Crash a deploy participant while a version stage is in flight.

    The version-space twin of :class:`CrashDuringMigration`: polls
    :attr:`~repro.versioning.deployer.MigrationDeployer.active_stage`
    and, the moment a stage opens, crashes the chosen participant.  The
    deployer's checkpoint-and-retry path must leave every object at
    exactly its old or new version hash — never a hybrid.

    Scenarios containing this action require the orchestrator to be
    built with a ``deployer`` (see :class:`ChaosOrchestrator`); the
    built-in :data:`SCENARIOS` therefore never include it.
    """

    #: Simulated time the watcher arms itself.
    arm_at: float = 50.0
    #: How long the crashed participant stays down.
    down_for: float = 40.0
    #: How many stages to ambush.
    times: int = 1
    #: Polling period while armed.
    poll: float = 1.0
    #: Which participant to crash: "coordinator" (the node driving the
    #: deploy) or "participant" (a node hosting an object of the stage).
    victim: str = "coordinator"


Action = Union[
    CrashStorm,
    RollingPartition,
    FlappingLink,
    CrashDuringMigration,
    CrashDuringDeploy,
]


@dataclass(frozen=True)
class ChaosScenario:
    """A named bundle of chaos actions injected into one run."""

    name: str
    actions: Tuple[Action, ...]

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on a malformed scenario."""
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        if not self.actions:
            raise ConfigurationError(
                f"scenario {self.name!r} has no actions"
            )
        for action in self.actions:
            if isinstance(action, CrashDuringMigration) and action.victim not in (
                "target",
                "origin",
                "either",
            ):
                raise ConfigurationError(
                    f"victim must be 'target', 'origin' or 'either', "
                    f"got {action.victim!r}"
                )
            if isinstance(action, CrashDuringDeploy) and action.victim not in (
                "coordinator",
                "participant",
            ):
                raise ConfigurationError(
                    f"victim must be 'coordinator' or 'participant', "
                    f"got {action.victim!r}"
                )

    @property
    def needs_deployer(self) -> bool:
        """Whether any action targets a versioned deploy."""
        return any(
            isinstance(action, CrashDuringDeploy) for action in self.actions
        )


#: Built-in scenarios, keyed by CLI name.
SCENARIOS: Dict[str, ChaosScenario] = {
    "crash-storm": ChaosScenario(
        "crash-storm", (CrashStorm(),)
    ),
    "rolling-partition": ChaosScenario(
        "rolling-partition", (RollingPartition(),)
    ),
    "flapping-links": ChaosScenario(
        "flapping-links",
        (FlappingLink(), FlappingLink(start=420.0, flaps=4)),
    ),
    "crash-during-migration": ChaosScenario(
        "crash-during-migration", (CrashDuringMigration(),)
    ),
    "mayhem": ChaosScenario(
        "mayhem",
        (
            CrashStorm(at=200.0, victims=1, waves=2, wave_gap=600.0),
            RollingPartition(start=350.0, rounds=3),
            FlappingLink(start=100.0, flaps=4),
            CrashDuringMigration(arm_at=80.0, times=1),
        ),
    ),
}


# ---------------------------------------------------------------------------
# The orchestrator
# ---------------------------------------------------------------------------


class ChaosOrchestrator:
    """Turns a declarative scenario into scheduled fault injections.

    Each action becomes one simulation process drawing from its own
    ``"chaos.<scenario>.<idx>"`` stream, so the havoc is reproducible
    per seed and independent of the workload's randomness.
    """

    def __init__(
        self,
        workload: FaultToleranceWorkload,
        scenario: ChaosScenario,
        deployer=None,
    ):
        scenario.validate()
        if workload.faults is None:
            raise ConfigurationError(
                "chaos needs a fault injector: build the workload with "
                "scripted_faults=True (or mttf > 0)"
            )
        if scenario.needs_deployer and deployer is None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} contains a CrashDuringDeploy "
                "action; pass the MigrationDeployer it should ambush"
            )
        self.workload = workload
        self.scenario = scenario
        #: The versioned-migration deployer ambushed by
        #: :class:`CrashDuringDeploy` actions (None otherwise).
        self.deployer = deployer
        self.system = workload.system
        self.faults = workload.faults
        # Partitions and flaps act on the link fault model; install a
        # zero-loss one when the workload did not configure losses (it
        # never draws randomness until a link actually goes down).
        if self.system.network.faults is None:
            self.system.network.install_faults(LinkFaultModel())
        self.links = self.system.network.faults
        self._started = False
        # Accounting.
        self.crashes_injected = 0
        self.partitions_injected = 0
        self.link_flaps = 0
        self.migration_crashes = 0
        self.deploy_crashes = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Launch one injection process per scenario action (idempotent)."""
        if self._started:
            return
        self._started = True
        for idx, action in enumerate(self.scenario.actions):
            stream = self.system.streams.stream(
                f"chaos.{self.scenario.name}.{idx}"
            )
            self.system.env.process(
                self._dispatch(action, stream),
                name=f"chaos-{self.scenario.name}-{idx}",
            )

    def _dispatch(self, action: Action, stream: Stream) -> Generator:
        if isinstance(action, CrashStorm):
            yield from self._crash_storm(action, stream)
        elif isinstance(action, RollingPartition):
            yield from self._rolling_partition(action, stream)
        elif isinstance(action, FlappingLink):
            yield from self._flapping_link(action, stream)
        elif isinstance(action, CrashDuringMigration):
            yield from self._crash_during_migration(action, stream)
        elif isinstance(action, CrashDuringDeploy):
            yield from self._crash_during_deploy(action, stream)
        else:  # pragma: no cover - the Union is exhaustive
            raise ConfigurationError(f"unknown chaos action {action!r}")

    # -- individual actions ----------------------------------------------------

    def _up_candidates(self) -> List[int]:
        """Nodes eligible as crash victims: up, and not the monitor.

        The detector's monitor node is spared so failure detection
        itself keeps running through the storm (crashing the observer
        is a different experiment — partition it instead).
        """
        monitor = (
            self.workload.detector.monitor_node
            if self.workload.detector is not None
            else 0
        )
        return [
            node.node_id
            for node in self.system.registry.nodes
            if node.node_id != monitor and not self.faults.is_down(node.node_id)
        ]

    def _crash_storm(self, storm: CrashStorm, stream: Stream) -> Generator:
        env = self.system.env
        if storm.at > 0:
            yield env.timeout(storm.at)
        for wave in range(storm.waves):
            if wave > 0:
                yield env.timeout(storm.wave_gap)
            candidates = self._up_candidates()
            # Leave at least one non-monitor node standing.
            count = min(storm.victims, max(len(candidates) - 1, 0))
            if count <= 0:
                continue
            stream.shuffle(candidates)
            for victim in candidates[:count]:
                if self.faults.crash(victim, duration=storm.down_for):
                    self.crashes_injected += 1

    def _rolling_partition(
        self, part: RollingPartition, stream: Stream
    ) -> Generator:
        env = self.system.env
        if part.start > 0:
            yield env.timeout(part.start)
        node_ids = [n.node_id for n in self.system.registry.nodes]
        first = stream.integer(0, len(node_ids))
        for round_no in range(part.rounds):
            if round_no > 0:
                yield env.timeout(part.gap)
            isolated = node_ids[(first + round_no) % len(node_ids)]
            cut = [
                (isolated, other) for other in node_ids if other != isolated
            ]
            for a, b in cut:
                self.links.fail_link(a, b)
            self.partitions_injected += 1
            yield env.timeout(part.hold)
            # Restore exactly the links this round cut — a blanket
            # heal() would also resurrect links a concurrent flapping
            # action is holding down.
            for a, b in cut:
                self.links.restore_link(a, b)

    def _flapping_link(self, flap: FlappingLink, stream: Stream) -> Generator:
        env = self.system.env
        if flap.start > 0:
            yield env.timeout(flap.start)
        if flap.link is not None:
            a, b = flap.link
        else:
            node_ids = [n.node_id for n in self.system.registry.nodes]
            count = len(node_ids)
            ai = stream.integer(0, count)
            bi = stream.integer(0, count - 1)
            if bi >= ai:
                bi += 1
            a, b = node_ids[ai], node_ids[bi]
        for flap_no in range(flap.flaps):
            if flap_no > 0:
                yield env.timeout(flap.up_for)
            self.links.fail_link(a, b)
            self.link_flaps += 1
            yield env.timeout(flap.down_for)
            self.links.restore_link(a, b)

    def _crash_during_migration(
        self, ambush: CrashDuringMigration, stream: Stream
    ) -> Generator:
        env = self.system.env
        migrations = self.system.migrations
        if ambush.arm_at > 0:
            yield env.timeout(ambush.arm_at)
        remaining = ambush.times
        while remaining > 0:
            if not migrations.active_transfers:
                yield env.timeout(ambush.poll)
                continue
            # Deterministic pick: the in-flight transfer with the
            # smallest object id.
            object_id = min(migrations.active_transfers)
            origin, target = migrations.active_transfers[object_id]
            if ambush.victim == "origin":
                victim = origin
            elif ambush.victim == "target":
                victim = target
            else:
                victim = origin if stream.uniform() < 0.5 else target
            if self.faults.crash(victim, duration=ambush.down_for):
                self.crashes_injected += 1
                self.migration_crashes += 1
                remaining -= 1
            # Let this transfer resolve before ambushing the next one.
            yield env.timeout(ambush.down_for)

    def _crash_during_deploy(
        self, ambush: CrashDuringDeploy, stream: Stream
    ) -> Generator:
        env = self.system.env
        deployer = self.deployer
        if ambush.arm_at > 0:
            yield env.timeout(ambush.arm_at)
        remaining = ambush.times
        while remaining > 0:
            active = deployer.active_stage
            if active is None:
                yield env.timeout(ambush.poll)
                continue
            if ambush.victim == "coordinator":
                victim = deployer.coordinator_node
            else:
                # Deterministic pick: the node hosting the stage's
                # smallest object id.
                object_id = min(active[1])
                victim = self.system.registry.get(object_id).node_id
            if self.faults.crash(victim, duration=ambush.down_for):
                self.crashes_injected += 1
                self.deploy_crashes += 1
                remaining -= 1
            # Let the stage roll back and retry before the next ambush.
            yield env.timeout(ambush.down_for)

    def stats(self) -> dict:
        """Injection counters for reports and tests."""
        return {
            "crashes_injected": self.crashes_injected,
            "partitions_injected": self.partitions_injected,
            "link_flaps": self.link_flaps,
            "migration_crashes": self.migration_crashes,
            "deploy_crashes": self.deploy_crashes,
        }


# ---------------------------------------------------------------------------
# The campaign harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosCampaignParameters:
    """Configuration of one chaos campaign run."""

    #: Name of a built-in scenario (key of :data:`SCENARIOS`).
    scenario: str = "mayhem"
    nodes: int = 8
    clients: int = 6
    servers: int = 3
    #: Background message loss on every link (partitions come on top).
    loss: float = 0.02
    lease_duration: float = 30.0
    sweep_interval: float = 5.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 8.0
    #: None = timeout mode; set to run the detector in phi-accrual mode.
    phi_threshold: Optional[float] = None
    #: How often the invariant monitor re-checks safety.
    check_interval: float = 5.0
    #: Trace records retained for violation diagnostics.
    trace_capacity: int = 256
    sim_time: float = 2_000.0
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; "
                f"choose one of {sorted(SCENARIOS)}"
            )
        if self.check_interval <= 0:
            raise ConfigurationError("check_interval must be positive")
        if self.trace_capacity < 1:
            raise ConfigurationError("trace_capacity must be >= 1")
        self.to_ft().validate()

    def to_ft(self) -> FaultToleranceParameters:
        """The underlying fault-tolerance cell this campaign runs.

        Always the place-policy with leases and heartbeat detection —
        the configuration with the most safety machinery to violate —
        with ``mttf = 0``: every crash is scripted by the scenario, so
        the run is fully reproducible from the seed.
        """
        return FaultToleranceParameters(
            nodes=self.nodes,
            clients=self.clients,
            servers=self.servers,
            policy="placement",
            lease_duration=self.lease_duration,
            sweep_interval=self.sweep_interval,
            loss=self.loss,
            mttf=0.0,
            scripted_faults=True,
            detection="heartbeat",
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            phi_threshold=self.phi_threshold,
            retry=RetryPolicy(),
            sim_time=self.sim_time,
            seed=self.seed,
        )


@dataclass
class ChaosCampaignResult:
    """Outcome of one chaos campaign."""

    params: ChaosCampaignParameters
    #: The standard fault-tolerance metrics of the underlying cell.
    ft: FaultToleranceResult
    #: Injection counters from the orchestrator.
    injections: Dict[str, int]
    #: Invariant evaluation rounds performed.
    invariant_checks: int
    #: Violations recorded (the run raises on the first one, so this is
    #: non-empty only when the caller caught the error).
    violations: List[str] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """True when every invariant held for the whole run."""
        return not self.violations


class ChaosCampaign:
    """One scenario run under full invariant monitoring.

    Wires together the fault-tolerance workload (place-policy, leases,
    heartbeat detection), the scenario orchestrator, a bounded ring
    trace and the invariant monitor.  :meth:`run` raises
    :class:`~repro.errors.InvariantViolationError` on the first safety
    violation; a clean return means the system survived the scenario.
    """

    def __init__(
        self,
        params: ChaosCampaignParameters,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        params.validate()
        self.params = params
        self.telemetry = telemetry
        self.tracer = RingTracer(capacity=params.trace_capacity)
        self.workload = FaultToleranceWorkload(
            params.to_ft(), tracer=self.tracer, telemetry=telemetry
        )
        self.scenario = SCENARIOS[params.scenario]
        self.orchestrator = ChaosOrchestrator(self.workload, self.scenario)
        # Physical liveness guard: a call must never *execute* on a
        # node that is really down, no matter what the detector thinks.
        self.workload.system.invocations.liveness = self.workload.faults
        self.monitor = InvariantMonitor(
            self.workload.system.env,
            interval=params.check_interval,
            tracer=self.tracer,
            trace_limit=min(50, params.trace_capacity),
        )
        self._register_invariants()

    # -- the invariants ---------------------------------------------------------

    def _register_invariants(self) -> None:
        system = self.workload.system
        locks = self.workload.locks
        invocations = system.invocations
        migrations = system.migrations
        env = system.env

        # 1. Exactly one home per object: the registry's residency sets
        #    mirror object state (raises AssertionError on violation).
        self.monitor.invariant("unique-home", system.registry.check_consistency)

        # 2. No object lost: anything in transit reinstalls — possibly
        #    back at its origin via rollback — within the outbound +
        #    rollback window.  A crash mid-transfer must not strand the
        #    object on the wire forever.
        def no_object_lost():
            for obj in system.registry.objects:
                if not obj.in_transit:
                    continue
                elapsed = env.now - obj._transit_started
                # Outbound leg + rollback leg, plus scheduling slack.
                bound = 2.0 * migrations.duration_for(obj) + 4.0 * max(
                    migrations.default_duration, 1.0
                )
                if elapsed > bound:
                    return (
                        False,
                        f"{obj.name} in transit for {elapsed:.1f} "
                        f"(bound {bound:.1f}) — object lost on the wire",
                    )
            return True

        self.monitor.invariant("no-object-lost", no_object_lost)

        # 3. Lock/lease bookkeeping consistent: every lock held by
        #    exactly one live block, no broken block still holding.
        if locks is not None:
            self.monitor.invariant("locks-consistent", locks.check_invariant)

        # 4. No invocation ever executes on a physically crashed node.
        def no_exec_on_crashed():
            count = invocations.executions_on_crashed
            if count:
                return (
                    False,
                    f"{count} invocation(s) executed on a crashed node",
                )
            return True

        self.monitor.invariant("no-exec-on-crashed", no_exec_on_crashed)

    # -- lifecycle --------------------------------------------------------------

    def run(self) -> ChaosCampaignResult:
        """Run the campaign; raises on the first invariant violation."""
        self.workload.start()
        self.orchestrator.start()
        self.monitor.start()
        try:
            self.workload.system.run(until=self.params.sim_time)
        except ProcessError as exc:
            # The periodic checker runs as a simulation process, so its
            # violation arrives wrapped; unwrap to keep the documented
            # contract (and the diagnostic trace) intact.
            cause = exc.__cause__
            if isinstance(cause, InvariantViolationError):
                raise cause from None
            raise
        # One final check after the horizon so a violation in the last
        # interval cannot slip through.
        self.monitor.check_now()
        return self.collect_result()

    def collect_result(self) -> ChaosCampaignResult:
        """Assemble the result record from the current state."""
        return ChaosCampaignResult(
            params=self.params,
            ft=self.workload.collect_result(),
            injections=self.orchestrator.stats(),
            invariant_checks=self.monitor.checks,
            violations=list(self.monitor.violations),
        )


def run_chaos_campaign(params: ChaosCampaignParameters) -> ChaosCampaignResult:
    """Convenience one-shot wrapper."""
    return ChaosCampaign(params).run()
