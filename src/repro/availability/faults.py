"""Node failure injection.

§2.2 lists availability among the goals migration can serve: "objects
can be moved to different nodes to provide better failure coverage",
immediately noting the tension — "availability calls for distributing
objects, while performance calls for collocating them".  The evaluation
never quantifies this; :mod:`repro.availability` does.

:class:`FaultInjector` runs one crash/recover process per node: nodes
stay up for Exp(mttf), go down for Exp(mttr).  While a node is down
every object resident on it is unreachable; calls issued against it
block until recovery (crash-recover semantics with stable state — the
simplest model that exposes the placement trade-off).

The injector is also the system's *node-health provider*: it wires
itself into the migration service so transfers towards a down node
abort and roll back instead of "succeeding" into a dead host, and the
:class:`~repro.core.locking.LeaseSweeper` can consult it to reclaim
place-policy locks held by crashed movers.  Nodes added to the system
after the injector was built (``DistributedSystem.add_node``) are
picked up lazily — state dictionaries grow on demand and a repeated
:meth:`start` launches life processes for any nodes added since.
"""

from __future__ import annotations

from typing import Dict, Generator, Set

from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.resources import Waiters
from repro.sim.stats import TimeWeightedStats


class FaultInjector:
    """Per-node crash/recovery processes with blocking semantics.

    Parameters
    ----------
    system:
        The distributed system whose nodes fail.
    mttf:
        Mean time to failure (up-time duration, exponential).
    mttr:
        Mean time to repair (down-time duration, exponential).
    """

    def __init__(
        self,
        system: DistributedSystem,
        mttf: float = 1_000.0,
        mttr: float = 50.0,
    ):
        if mttf <= 0 or mttr <= 0:
            raise ValueError("mttf and mttr must be positive")
        self.system = system
        self.mttf = mttf
        self.mttr = mttr
        self._down: Set[int] = set()
        self._recovered: Dict[int, Waiters] = {}
        self._availability: Dict[int, TimeWeightedStats] = {}
        for node in system.registry.nodes:
            self._ensure(node.node_id)
        self.failures = 0
        self._watched: Set[int] = set()
        self._started = False
        # The injector is the authoritative health provider: migrations
        # towards a node it reports down abort and roll back.
        system.migrations.health = self

    def _ensure(self, node_id: int) -> None:
        """Create per-node state on demand (supports late add_node)."""
        if node_id not in self._recovered:
            self._recovered[node_id] = Waiters(self.system.env)
            self._availability[node_id] = TimeWeightedStats(
                initial_value=1.0, start_time=self.system.env.now
            )

    # -- state ---------------------------------------------------------------------

    def is_down(self, node_id: int) -> bool:
        """Whether the node is currently failed."""
        return node_id in self._down

    def availability_of(self, node_id: int) -> float:
        """Fraction of time the node has been up since it was tracked."""
        self._ensure(node_id)
        return self._availability[node_id].mean(self.system.env.now)

    def recovered(self, node_id: int) -> Waiters:
        """Broadcast condition fired each time the node comes back up."""
        self._ensure(node_id)
        return self._recovered[node_id]

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the crash/recover process on every node.

        Idempotent per node: calling it again only starts processes for
        nodes added to the system since the previous call.
        """
        self._started = True
        for node in self.system.registry.nodes:
            node_id = node.node_id
            if node_id in self._watched:
                continue
            self._watched.add(node_id)
            self._ensure(node_id)
            self.system.env.process(
                self._node_life(node_id),
                name=f"faults-node-{node_id}",
            )

    def _node_life(self, node_id: int) -> Generator:
        stream = self.system.streams.stream(f"faults.node.{node_id}")
        env = self.system.env
        while True:
            yield env.timeout(stream.exponential(self.mttf))
            self._down.add(node_id)
            self._availability[node_id].update(0.0, env.now)
            self.failures += 1
            yield env.timeout(stream.exponential(self.mttr))
            self._down.discard(node_id)
            self._availability[node_id].update(1.0, env.now)
            self._recovered[node_id].notify_all()

    # -- fault-aware invocation --------------------------------------------------------

    def wait_until_up(self, node_id: int) -> Generator:
        """Process fragment blocking while ``node_id`` is down.

        Returns the time spent waiting.
        """
        env = self.system.env
        blocked = 0.0
        self._ensure(node_id)
        while self.is_down(node_id):
            t0 = env.now
            yield self._recovered[node_id].wait()
            blocked += env.now - t0
        return blocked

    def invoke(
        self, caller_node: int, obj: DistributedObject, body=None
    ) -> Generator:
        """Invoke ``obj``, blocking while its hosting node is down.

        The blocked time counts into the caller-observed duration, so
        availability loss shows up directly in the latency metric.
        Returns ``(result, blocked_on_failure)``.
        """
        # Callers on a downed node are themselves dead; model their
        # operation as deferred until their node recovers.
        blocked = yield from self.wait_until_up(caller_node)
        blocked += yield from self.wait_until_up(obj.node_id)
        result = yield from self.system.invocations.invoke(
            caller_node, obj, body=body
        )
        return result, blocked
