"""Node failure injection.

§2.2 lists availability among the goals migration can serve: "objects
can be moved to different nodes to provide better failure coverage",
immediately noting the tension — "availability calls for distributing
objects, while performance calls for collocating them".  The evaluation
never quantifies this; :mod:`repro.availability` does.

:class:`FaultInjector` runs one crash/recover process per node: nodes
stay up for Exp(mttf), go down for Exp(mttr).  While a node is down
every object resident on it is unreachable; calls issued against it
block until recovery (crash-recover semantics with stable state — the
simplest model that exposes the placement trade-off).

The injector is also the system's *node-health provider*: it wires
itself into the migration service so transfers towards a down node
abort and roll back instead of "succeeding" into a dead host, and the
:class:`~repro.core.locking.LeaseSweeper` can consult it to reclaim
place-policy locks held by crashed movers.  Nodes added to the system
after the injector was built (``DistributedSystem.add_node``) are
picked up lazily — state dictionaries grow on demand and a repeated
:meth:`start` launches life processes for any nodes added since.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Set

from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.resources import Waiters
from repro.sim.stats import TimeWeightedStats


class FaultInjector:
    """Per-node crash/recovery processes with blocking semantics.

    Parameters
    ----------
    system:
        The distributed system whose nodes fail.
    mttf:
        Mean time to failure (up-time duration, exponential).
    mttr:
        Mean time to repair (down-time duration, exponential).
    """

    def __init__(
        self,
        system: DistributedSystem,
        mttf: float = 1_000.0,
        mttr: float = 50.0,
    ):
        if mttf < 0 or mttr <= 0:
            raise ValueError(
                "mttf must be >= 0 (0 = scripted crashes only) and "
                "mttr positive"
            )
        self.system = system
        self.mttf = mttf
        self.mttr = mttr
        self._down: Set[int] = set()
        self._recovered: Dict[int, Waiters] = {}
        self._availability: Dict[int, TimeWeightedStats] = {}
        for node in system.registry.nodes:
            self._ensure(node.node_id)
        self.failures = 0
        self._watched: Set[int] = set()
        self._started = False
        # The injector is the authoritative health provider: migrations
        # towards a node it reports down abort and roll back.
        system.migrations.health = self

    def _ensure(self, node_id: int) -> None:
        """Create per-node state on demand (supports late add_node)."""
        if node_id not in self._recovered:
            self._recovered[node_id] = Waiters(self.system.env)
            self._availability[node_id] = TimeWeightedStats(
                initial_value=1.0, start_time=self.system.env.now
            )

    # -- state ---------------------------------------------------------------------

    def is_down(self, node_id: int) -> bool:
        """Whether the node is currently failed."""
        return node_id in self._down

    def availability_of(self, node_id: int) -> float:
        """Fraction of time the node has been up since it was tracked."""
        self._ensure(node_id)
        return self._availability[node_id].mean(self.system.env.now)

    def recovered(self, node_id: int) -> Waiters:
        """Broadcast condition fired each time the node comes back up."""
        self._ensure(node_id)
        return self._recovered[node_id]

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the crash/recover process on every node.

        Idempotent per node: calling it again only starts processes for
        nodes added to the system since the previous call.  With
        ``mttf == 0`` no autonomous life processes run — the injector
        is then purely scripted via :meth:`crash`/:meth:`recover`
        (chaos campaigns drive it this way).
        """
        self._started = True
        for node in self.system.registry.nodes:
            node_id = node.node_id
            if node_id in self._watched:
                continue
            self._watched.add(node_id)
            self._ensure(node_id)
            if self.mttf > 0:
                self.system.env.process(
                    self._node_life(node_id),
                    name=f"faults-node-{node_id}",
                )

    def _node_life(self, node_id: int) -> Generator:
        stream = self.system.streams.stream(f"faults.node.{node_id}")
        env = self.system.env
        while True:
            yield env.timeout(stream.exponential(self.mttf))
            self._fail(node_id)
            yield env.timeout(stream.exponential(self.mttr))
            self._repair(node_id)

    # -- state transitions (shared by autonomous and scripted failures) --------

    def _fail(self, node_id: int) -> bool:
        if node_id in self._down:
            return False
        self._ensure(node_id)
        self._down.add(node_id)
        self._availability[node_id].update(0.0, self.system.env.now)
        self.failures += 1
        return True

    def _repair(self, node_id: int) -> bool:
        if node_id not in self._down:
            return False
        self._down.discard(node_id)
        self._availability[node_id].update(1.0, self.system.env.now)
        self._recovered[node_id].notify_all()
        return True

    # -- scripted failures (chaos campaigns) -----------------------------------

    def crash(self, node_id: int, duration: Optional[float] = None) -> bool:
        """Crash a node now (scripted fault injection).

        Returns False (and does nothing) when the node is already
        down.  With ``duration`` set, a recovery is scheduled that many
        time units from now; otherwise the node stays down until
        :meth:`recover` is called.
        """
        self.system.registry.node(node_id)  # validate the node exists
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not self._fail(node_id):
            return False
        if duration is not None:
            self.system.env.process(
                self._timed_recovery(node_id, duration),
                name=f"chaos-recover-{node_id}",
            )
        return True

    def recover(self, node_id: int) -> bool:
        """Repair a node now; returns False if it was not down."""
        return self._repair(node_id)

    def _timed_recovery(self, node_id: int, duration: float) -> Generator:
        yield self.system.env.timeout(duration)
        self._repair(node_id)

    # -- fault-aware invocation --------------------------------------------------------

    def wait_until_up(self, node_id: int) -> Generator:
        """Process fragment blocking while ``node_id`` is down.

        Returns the time spent waiting.
        """
        env = self.system.env
        blocked = 0.0
        self._ensure(node_id)
        while self.is_down(node_id):
            t0 = env.now
            yield self._recovered[node_id].wait()
            blocked += env.now - t0
        return blocked

    def invoke(
        self, caller_node: int, obj: DistributedObject, body=None
    ) -> Generator:
        """Invoke ``obj``, blocking while its hosting node is down.

        The blocked time counts into the caller-observed duration, so
        availability loss shows up directly in the latency metric.
        Returns ``(result, blocked_on_failure)``.
        """
        # Callers on a downed node are themselves dead; model their
        # operation as deferred until their node recovers.
        blocked = yield from self.wait_until_up(caller_node)
        blocked += yield from self.wait_until_up(obj.node_id)
        result = yield from self.system.invocations.invoke(
            caller_node, obj, body=body
        )
        return result, blocked
