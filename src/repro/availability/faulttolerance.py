"""Fault-tolerance study: migration policies on a failure-prone system.

The paper compares no-migration, conventional migration and the §3.2
place-policy on a *perfectly reliable* system.  This workload re-runs
that comparison under the fault layer:

* messages are lost with probability ``loss``
  (:class:`~repro.network.faults.LinkFaultModel` + the invocation
  :class:`~repro.runtime.retry.RetryPolicy`);
* nodes crash and recover (Exp(``mttf``)/Exp(``mttr``),
  :class:`~repro.availability.faults.FaultInjector`), which also makes
  migrations towards dead nodes abort and roll back;
* a client whose node crashes mid-move-block *abandons* the block —
  it never issues ``end``, so under the plain place-policy its locks
  are held forever and every later mover is starved into permanent
  remote invocation.  With ``lease_duration`` set, the lock manager
  grants expiring leases and a :class:`~repro.core.locking.LeaseSweeper`
  reclaims locks of crashed holders, restoring the place-policy's
  benefit (the graceful-degradation story of §3.2 extended to crashes).

The measured metric is the paper's §4.2.1 "mean duration of one call":
per-call durations with each block's migration cost distributed evenly
over its calls.  Throughput is completed calls per unit of simulated
time.  All parameters default to the paper's Table 1 values where one
exists (M = 6, N = 6 calls per block).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.availability.faults import FaultInjector
from repro.core.locking import LeaseSweeper, LockManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.placement import TransientPlacement
from repro.core.policies.sedentary import SedentaryPolicy
from repro.errors import (
    ConfigurationError,
    MessageLostError,
    NodeDownError,
    TimeoutError,
)
from repro.network.faults import LinkFaultModel
from repro.runtime.failure import FailureDetector
from repro.runtime.retry import RetryPolicy
from repro.runtime.system import DistributedSystem
from repro.sim.stats import RunningStats
from repro.sim.trace import NULL_TRACER, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry

#: Policies the study compares (registry names as in the paper study).
FT_POLICIES = ("sedentary", "migration", "placement")

#: How crashed lock holders are detected: the ground-truth oracle of
#: PR 1, or the heartbeat failure detector (suspicion can be wrong).
FT_DETECTION_MODES = ("oracle", "heartbeat")


@dataclass(frozen=True)
class FaultToleranceParameters:
    """Configuration of one fault-tolerance cell."""

    nodes: int = 8
    clients: int = 6
    servers: int = 3
    #: "sedentary" (no migration), "migration" (conventional) or
    #: "placement" (§3.2 place-policy).
    policy: str = "placement"
    #: Lease length for place-policy locks; None = plain §3.2 locks
    #: that a crashed holder keeps forever.
    lease_duration: Optional[float] = None
    #: Period of the lease sweeper (only with leases enabled).
    sweep_interval: float = 10.0
    #: Message loss probability on every remote link.
    loss: float = 0.0
    #: Mean node up-time; 0 disables crashes entirely.
    mttf: float = 0.0
    #: Mean node repair time.
    mttr: float = 50.0
    #: Build the fault injector even with ``mttf == 0`` so scripted
    #: (chaos-campaign) crashes can be injected.
    scripted_faults: bool = False
    #: "oracle" = ground-truth health provider (PR 1 behaviour);
    #: "heartbeat" = heartbeat failure detector with possible false
    #: suspicion drives lock breaking, failover and chain repair.
    detection: str = "oracle"
    #: Heartbeat period (heartbeat detection only).
    heartbeat_interval: float = 1.0
    #: Silence threshold before a node is suspected (timeout mode).
    heartbeat_timeout: float = 15.0
    #: When set, the detector runs in phi-accrual mode instead.
    phi_threshold: Optional[float] = None
    #: Mean gap between a client's move-blocks.
    mean_think_time: float = 4.0
    #: Mean calls per move-block (the paper's N).
    mean_block_calls: float = 6.0
    #: Transfer time of one object (the paper's M).
    migration_duration: float = 6.0
    #: Invocation timeout/retry policy.
    retry: RetryPolicy = RetryPolicy()
    #: Fixed simulation horizon (no stopping rule: degraded cells must
    #: not terminate early just because they produce few observations).
    sim_time: float = 5_000.0
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.nodes < 2:
            raise ConfigurationError("need at least two nodes")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.servers < 1:
            raise ConfigurationError("need at least one server")
        if self.policy not in FT_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {FT_POLICIES}, got {self.policy!r}"
            )
        if self.lease_duration is not None and self.lease_duration <= 0:
            raise ConfigurationError("lease_duration must be positive")
        if self.lease_duration is not None and self.policy != "placement":
            raise ConfigurationError(
                "lease_duration only applies to the placement policy"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError("loss must be in [0, 1)")
        if self.mttf < 0 or self.mttr <= 0:
            raise ConfigurationError(
                "mttf must be >= 0 (0 = no crashes) and mttr positive"
            )
        if self.detection not in FT_DETECTION_MODES:
            raise ConfigurationError(
                f"detection must be one of {FT_DETECTION_MODES}, "
                f"got {self.detection!r}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ConfigurationError(
                "heartbeat_interval and heartbeat_timeout must be positive"
            )
        if self.phi_threshold is not None and self.phi_threshold <= 0:
            raise ConfigurationError("phi_threshold must be positive")
        if self.mean_think_time < 0:
            raise ConfigurationError("mean_think_time must be >= 0")
        if self.mean_block_calls <= 0:
            raise ConfigurationError("mean_block_calls must be positive")
        if self.sim_time <= 0:
            raise ConfigurationError("sim_time must be positive")


@dataclass
class FaultToleranceResult:
    """Outcome of one fault-tolerance cell."""

    params: FaultToleranceParameters
    #: §4.2.1 metric: per-call duration with amortized migration cost.
    mean_call_duration: float
    #: Completed calls per unit of simulated time.
    throughput: float
    completed_blocks: int
    abandoned_blocks: int
    #: Calls that exhausted their retry budget.
    failed_calls: int
    retries: int
    timeouts: int
    migrations_aborted: int
    locks_expired: int
    locks_broken: int
    node_failures: int
    #: Suspicion transitions of the heartbeat detector (0 with oracle).
    suspicions: int = 0
    #: Suspicions of nodes that were actually up (0 with oracle).
    false_suspicions: int = 0
    #: Calls abandoned early because the callee was suspected dead.
    failovers: int = 0
    raw: Dict = field(default_factory=dict)


class FaultToleranceWorkload:
    """Builds and runs one fault-tolerance cell.

    ``telemetry`` (default NULL) threads a
    :class:`~repro.telemetry.core.Telemetry` sink through the whole
    stack — network, invocations, migrations, locks — and starts the
    kernel sampler alongside the clients.
    """

    def __init__(
        self,
        params: FaultToleranceParameters,
        tracer: Tracer = NULL_TRACER,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        params.validate()
        self.params = params
        self.telemetry = telemetry
        fault_model = (
            LinkFaultModel(loss_probability=params.loss)
            if params.loss > 0
            else None
        )
        self.system = DistributedSystem(
            nodes=params.nodes,
            seed=params.seed,
            migration_duration=params.migration_duration,
            fault_model=fault_model,
            retry=params.retry,
            tracer=tracer,
            telemetry=telemetry,
        )
        # Servers round-robin from the far end of the node range so most
        # clients (which sit at the low end) start remote from them.
        self.servers = [
            self.system.create_server(
                node=(params.nodes - 1 - i) % params.nodes, name=f"server-{i}"
            )
            for i in range(params.servers)
        ]
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self.system, mttf=params.mttf, mttr=params.mttr)
            if params.mttf > 0 or params.scripted_faults
            else None
        )
        # With heartbeat detection, lock breaking / failover run on
        # *suspicion*: the detector replaces the ground-truth oracle
        # everywhere a decision (rather than physics) is made.
        self.detector: Optional[FailureDetector] = None
        health = self.faults
        if params.detection == "heartbeat":
            self.detector = FailureDetector(
                self.system,
                faults=self.faults,
                interval=params.heartbeat_interval,
                timeout=params.heartbeat_timeout,
                phi_threshold=params.phi_threshold,
            )
            self.system.invocations.failure_detector = self.detector
            health = self.detector
        self.locks: Optional[LockManager] = None
        self.sweeper: Optional[LeaseSweeper] = None
        if params.policy == "placement":
            self.locks = LockManager(
                env=self.system.env,
                lease_duration=params.lease_duration,
                telemetry=telemetry,
            )
            self.policy = TransientPlacement(self.system, locks=self.locks)
            if params.lease_duration is not None:
                self.sweeper = LeaseSweeper(
                    self.system.env,
                    self.locks,
                    health=health,
                    interval=params.sweep_interval,
                )
        elif params.policy == "migration":
            self.policy = ConventionalMigration(self.system)
        else:
            self.policy = SedentaryPolicy(self.system)
        self.call_durations = RunningStats()
        self.completed_blocks = 0
        self.abandoned_blocks = 0
        self.failed_calls = 0
        self.failed_over_calls = 0
        self.lost_move_requests = 0
        self._started = False

    # -- helpers --------------------------------------------------------------

    def _crashed(self, node: int) -> bool:
        return self.faults is not None and self.faults.is_down(node)

    def _invoke(self, node: int, server) -> Generator:
        """Issue one call; returns the caller-observed duration.

        Time spent blocked on a crashed node counts into the duration —
        that is precisely how unavailability shows up as latency.
        """
        if self.faults is not None:
            result, blocked = yield from self.faults.invoke(node, server)
            return result.duration + blocked
        result = yield from self.system.invocations.invoke(node, server)
        return result.duration

    def _finish_block(self, block: MoveBlock) -> None:
        for observation in block.per_call_observations():
            self.call_durations.add(observation)

    # -- the client -----------------------------------------------------------

    def client_process(self, index: int) -> Generator:
        """One client's endless move-block loop under faults."""
        params = self.params
        node = index % params.nodes
        stream = self.system.streams.stream(f"ft.client.{index}")
        env = self.system.env
        while True:
            gap = stream.exponential(params.mean_think_time)
            if gap > 0:
                yield env.timeout(gap)
            if self._crashed(node):
                # The client's own node is down: it does nothing until
                # recovery (crash-recover with stable state).
                yield from self.faults.wait_until_up(node)
            server = stream.choice(self.servers)
            block = MoveBlock(node, server)
            try:
                yield from self.policy.move(block)
            except MessageLostError:
                # The move request itself was lost.  Moves are
                # best-effort advice, not calls: the client just works
                # remotely, exactly like a §3.2 rejected mover.
                self.lost_move_requests += 1
            abandoned = self._crashed(node)
            if not abandoned:
                calls = stream.geometric_at_least_one(params.mean_block_calls)
                for _ in range(calls):
                    if self._crashed(node):
                        # Crash mid-block: the block is abandoned and
                        # ``end`` is never issued — under the plain
                        # place-policy its locks leak forever.
                        abandoned = True
                        break
                    try:
                        duration = yield from self._invoke(node, server)
                    except NodeDownError:
                        # The callee is *suspected* crashed (heartbeat
                        # detection): fail over to another server for
                        # the rest of the block instead of retrying
                        # into the void.
                        self.failed_over_calls += 1
                        others = [s for s in self.servers if s is not server]
                        if others:
                            server = stream.choice(others)
                        continue
                    except TimeoutError:
                        self.failed_calls += 1
                        continue
                    block.record_call(duration)
            if abandoned:
                self.abandoned_blocks += 1
            else:
                yield from self.policy.end(block)
                self.completed_blocks += 1
            # Calls that did complete count either way (their durations
            # were really observed), with the block's migration cost
            # amortized over them per §4.2.1.
            self._finish_block(block)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Launch fault injection, sweeping and every client (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.telemetry.enabled:
            # Safe here: the workload always runs to a fixed horizon,
            # so the self-rescheduling sampler cannot keep it alive.
            self.telemetry.start_kernel_sampler(self.system.env)
        if self.faults is not None:
            self.faults.start()
        if self.detector is not None:
            self.detector.start()
        if self.sweeper is not None:
            self.sweeper.start()
        for i in range(self.params.clients):
            self.system.env.process(
                self.client_process(i), name=f"ft-client-{i}"
            )

    def collect_result(self) -> FaultToleranceResult:
        """Assemble the metrics from the current simulation state.

        Split out of :meth:`run` so harnesses that drive the clock
        themselves (chaos campaigns interleaving scripted faults and
        invariant checks) can still produce the standard result record.
        """
        invocations = self.system.invocations
        migrations = self.system.migrations
        detector = self.detector
        return FaultToleranceResult(
            params=self.params,
            mean_call_duration=(
                self.call_durations.mean if self.call_durations.count else 0.0
            ),
            throughput=self.call_durations.count / self.params.sim_time,
            completed_blocks=self.completed_blocks,
            abandoned_blocks=self.abandoned_blocks,
            failed_calls=self.failed_calls,
            retries=invocations.retries,
            timeouts=invocations.timeouts,
            migrations_aborted=migrations.migrations_aborted,
            locks_expired=self.locks.leases_expired if self.locks else 0,
            locks_broken=self.locks.leases_broken if self.locks else 0,
            node_failures=self.faults.failures if self.faults else 0,
            suspicions=detector.suspicions if detector else 0,
            false_suspicions=detector.false_suspicions if detector else 0,
            failovers=self.failed_over_calls,
            raw={
                "calls": self.call_durations.count,
                "lost_move_requests": self.lost_move_requests,
                "invocations": invocations.stats(),
                "policy": self.policy.stats(),
                "dropped_messages": self.system.network.dropped_messages,
                "detector": detector.stats() if detector else {},
            },
        )

    def run(self) -> FaultToleranceResult:
        """Simulate the fixed horizon and return the metrics."""
        self.start()
        self.system.run(until=self.params.sim_time)
        return self.collect_result()


def run_faulttolerance_cell(
    params: FaultToleranceParameters,
) -> FaultToleranceResult:
    """Convenience one-shot wrapper."""
    return FaultToleranceWorkload(params).run()
