"""Availability vs. collocation — §2.2's third migration goal, quantified.

"availability calls for distributing objects, while performance calls
for collocating them."  This subpackage injects node failures and
measures the trade-off between collocated and spread placements of a
group of related objects.  See
``benchmarks/bench_outlook_availability.py``.
"""

from repro.availability.chaos import (
    SCENARIOS,
    ChaosCampaign,
    ChaosCampaignParameters,
    ChaosCampaignResult,
    ChaosOrchestrator,
    ChaosScenario,
    CrashDuringDeploy,
    CrashDuringMigration,
    CrashStorm,
    FlappingLink,
    RollingPartition,
    run_chaos_campaign,
)
from repro.availability.faults import FaultInjector
from repro.availability.livechaos import (
    LiveChaosSchedule,
    LiveCrash,
    LiveFaultWindow,
    LivePartition,
    demo_schedule,
)
from repro.availability.faulttolerance import (
    FT_DETECTION_MODES,
    FT_POLICIES,
    FaultToleranceParameters,
    FaultToleranceResult,
    FaultToleranceWorkload,
    run_faulttolerance_cell,
)
from repro.availability.workload import (
    AvailabilityParameters,
    AvailabilityResult,
    AvailabilityWorkload,
    run_availability_cell,
)

__all__ = [
    "AvailabilityParameters",
    "AvailabilityResult",
    "AvailabilityWorkload",
    "ChaosCampaign",
    "ChaosCampaignParameters",
    "ChaosCampaignResult",
    "ChaosOrchestrator",
    "ChaosScenario",
    "CrashDuringDeploy",
    "CrashDuringMigration",
    "CrashStorm",
    "FT_DETECTION_MODES",
    "FT_POLICIES",
    "FaultInjector",
    "FaultToleranceParameters",
    "FaultToleranceResult",
    "FaultToleranceWorkload",
    "FlappingLink",
    "LiveChaosSchedule",
    "LiveCrash",
    "LiveFaultWindow",
    "LivePartition",
    "RollingPartition",
    "SCENARIOS",
    "demo_schedule",
    "run_availability_cell",
    "run_chaos_campaign",
    "run_faulttolerance_cell",
]
