"""Chaos actions over the live transport: the PR 4 vocabulary, wall-clock.

The sim's :mod:`repro.availability.chaos` drives crash storms, rolling
partitions, and flapping links against the virtual network.  This
module expresses the same scenario vocabulary as a *wall-clock
schedule* the live :class:`~repro.runtime.live.supervisor.
NodeSupervisor` executes against real worker processes:

* :class:`LiveCrash` — SIGKILL one worker mid-run; the supervisor's
  heartbeat detector notices, breaks the dead mover's leases
  (``break_crashed``), and restarts the node re-seeded from the
  placement map.
* :class:`LivePartition` — split the *data plane* into groups for a
  window; object transfers and remote invocations across the cut time
  out and abort, while the supervisor control plane stays reachable
  (chaos breaks the system under test, never the harness).
* :class:`LiveFaultWindow` — a window of probabilistic drops, delays,
  and duplicates on every worker's outbound data-plane edge, applied
  by broadcasting :class:`~repro.runtime.live.transport.
  FaultyTransport` snapshots.

Actions carry ``at`` offsets in seconds from workload start; the
schedule validates, sorts, and hands the supervisor one action at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LiveCrash:
    """Kill one worker process at ``at`` seconds into the run."""

    at: float
    #: Worker to kill; ``None`` lets the supervisor pick one that is up.
    node: Optional[int] = None
    #: Signal to deliver; ``None`` means SIGKILL.  SIGTERM exercises
    #: the victim's graceful flight-recorder dump instead of relying
    #: on its last periodic snapshot.
    sig: Optional[int] = None


@dataclass(frozen=True)
class LivePartition:
    """Partition the data plane into ``groups`` for ``duration`` s."""

    at: float
    duration: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "groups",
            tuple(tuple(sorted(set(g))) for g in self.groups),
        )


@dataclass(frozen=True)
class LiveFaultWindow:
    """Probabilistic link faults on every worker for ``duration`` s."""

    at: float
    duration: float
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_range: Tuple[float, float] = (0.0, 0.0)


@dataclass(frozen=True)
class KillSupervisor:
    """SIGKILL the *arbiter itself* at ``at`` seconds into the run.

    The harshest action in the vocabulary: the supervisor process dies
    mid-migration with no chance to flush anything beyond what the
    arbitration WAL already holds.  The demo runner notices the child
    vanished, respawns it in recovery mode (WAL replay + in-doubt
    settlement against worker inventories) and the run continues —
    workers are non-daemon orphans that keep heartbeating into the
    void until the new incarnation binds the control socket.
    """

    at: float


@dataclass
class LiveChaosSchedule:
    """Ordered chaos actions for one live run."""

    actions: List = field(default_factory=list)

    def validate(self) -> None:
        """Reject schedules with negative times or degenerate actions."""
        for action in self.actions:
            if action.at < 0:
                raise ValueError(f"action offset must be >= 0: {action}")
            duration = getattr(action, "duration", None)
            if duration is not None and duration <= 0:
                raise ValueError(f"action duration must be > 0: {action}")
            if isinstance(action, LiveFaultWindow):
                for rate in (action.drop_rate, action.duplicate_rate):
                    if not 0.0 <= rate < 1.0:
                        raise ValueError(f"rate out of [0,1): {action}")

    def ordered(self) -> List:
        """Validate and return the actions sorted by trigger time."""
        self.validate()
        return sorted(self.actions, key=lambda a: a.at)

    @property
    def crashes(self) -> int:
        """Number of :class:`LiveCrash` actions in the schedule."""
        return sum(1 for a in self.actions if isinstance(a, LiveCrash))

    @property
    def partitions(self) -> int:
        """Number of :class:`LivePartition` actions in the schedule."""
        return sum(1 for a in self.actions if isinstance(a, LivePartition))

    @property
    def supervisor_kills(self) -> int:
        """Number of :class:`KillSupervisor` actions in the schedule."""
        return sum(
            1 for a in self.actions if isinstance(a, KillSupervisor)
        )

    def without_supervisor_kills(self) -> "LiveChaosSchedule":
        """The schedule a *recovered* supervisor should resume with.

        A SIGKILL already consumed every action at or before its
        trigger time (the chaos loop is sequential), and re-running
        the kill would loop the run forever — the recovery child gets
        only the strictly-later, non-kill remainder, re-anchored so
        offsets keep their spacing relative to the kill.
        """
        kills = [a.at for a in self.actions if isinstance(a, KillSupervisor)]
        if not kills:
            return LiveChaosSchedule(actions=list(self.actions))
        cut = min(kills)
        return LiveChaosSchedule(
            actions=[
                replace(a, at=max(0.0, a.at - cut))
                for a in self.actions
                if not isinstance(a, KillSupervisor) and a.at > cut
            ]
        )

    def __repr__(self) -> str:
        return (
            f"<LiveChaosSchedule actions={len(self.actions)} "
            f"crashes={self.crashes} partitions={self.partitions} "
            f"supervisor_kills={self.supervisor_kills}>"
        )


def demo_schedule(num_nodes: int) -> LiveChaosSchedule:
    """The acceptance scenario: one partition window, one node crash.

    The partition isolates worker 1 from the rest of the data plane
    early in the run; after it heals, a different worker is killed so
    crash recovery and partition recovery are exercised independently.
    """
    if num_nodes < 2:
        raise ValueError(f"demo chaos needs >= 2 nodes, got {num_nodes}")
    others = tuple(range(2, num_nodes + 1))
    victim = 2 if num_nodes >= 2 else 1
    return LiveChaosSchedule(
        actions=[
            LivePartition(at=0.5, duration=0.8, groups=((1,), others)),
            LiveCrash(at=1.8, node=victim),
        ]
    )


def kill_supervisor_schedule(
    num_nodes: int, base: Optional[LiveChaosSchedule] = None, at: float = 1.2
) -> LiveChaosSchedule:
    """``base`` (default :func:`demo_schedule`) plus an arbiter SIGKILL.

    ``at`` defaults to the middle of the demo's partition-then-crash
    sequence so the kill lands while migrations (and usually an
    in-doubt transfer) are in flight — the scenario the WAL exists
    for.
    """
    schedule = (
        base
        if base is not None
        else (
            demo_schedule(num_nodes)
            if num_nodes >= 2
            else LiveChaosSchedule()
        )
    )
    return LiveChaosSchedule(
        actions=list(schedule.actions) + [KillSupervisor(at=at)]
    )


__all__ = [
    "KillSupervisor",
    "LiveChaosSchedule",
    "LiveCrash",
    "LiveFaultWindow",
    "LivePartition",
    "demo_schedule",
    "kill_supervisor_schedule",
]
