"""Break-even analysis between policy curves.

§4.2.2 reads the break-even points off Fig 12: "The break-even point
where migration gets worse than using fixed objects are 6 clients. ...
The break even rises to 20 concurrent clients [for the place-policy]."
This module finds such crossings on sampled curves by linear
interpolation, and fits the growth rate of a curve (the paper argues
conventional migration grows linearly in C while placement grows
sublinearly with a decreasing rate).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def crossings(
    x: Sequence[float],
    y_a: Sequence[float],
    y_b: Sequence[float],
) -> List[float]:
    """All x where curve A crosses curve B (A−B changes sign).

    Linear interpolation between samples; exact-touch points count
    once.  Inputs must share a strictly increasing x grid.
    """
    x = np.asarray(x, dtype=float)
    if len(x) != len(y_a) or len(x) != len(y_b):
        raise ValueError("x, y_a, y_b must have equal lengths")
    if len(x) < 2:
        return []
    if not np.all(np.diff(x) > 0):
        raise ValueError("x must be strictly increasing")
    diff = np.asarray(y_a, dtype=float) - np.asarray(y_b, dtype=float)

    out: List[float] = []
    for i in range(len(x) - 1):
        d0, d1 = diff[i], diff[i + 1]
        if d0 == 0.0:
            out.append(float(x[i]))
            continue
        if d0 * d1 < 0:
            # Sign change strictly inside the interval.
            t = d0 / (d0 - d1)
            out.append(float(x[i] + t * (x[i + 1] - x[i])))
    if diff[-1] == 0.0:
        out.append(float(x[-1]))
    return out


def break_even(
    x: Sequence[float],
    y_policy: Sequence[float],
    y_baseline: Sequence[float],
) -> Optional[float]:
    """First x where the policy becomes *worse* than the baseline.

    Returns ``None`` when the policy never exceeds the baseline over
    the sampled range (the paper's "break-even will be even bigger"
    case).
    """
    points = crossings(x, y_policy, y_baseline)
    y_policy = np.asarray(y_policy, dtype=float)
    y_baseline = np.asarray(y_baseline, dtype=float)
    for point in points:
        # Keep only crossings where the policy goes from below to above.
        after = np.searchsorted(np.asarray(x, dtype=float), point, side="right")
        if after < len(y_policy) and y_policy[after] > y_baseline[after]:
            return point
    return None


def growth_rate(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept of y over x."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x, y, deg=1)
    return float(slope), float(intercept)


def is_sublinear(x: Sequence[float], y: Sequence[float]) -> bool:
    """Whether the curve's local slope decreases over the range.

    Compares the average slope of the first and last halves; used to
    check the paper's claim that the place-policy curve "grows
    sublinearly in the number of clients and the growing rate
    decreases".
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) < 4:
        raise ValueError("need at least four points")
    mid = len(x) // 2
    first, _ = growth_rate(x[: mid + 1], y[: mid + 1])
    second, _ = growth_rate(x[mid:], y[mid:])
    return second < first
