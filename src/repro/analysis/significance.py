"""Statistical comparison of simulation cells.

Claims like §4.1's "other structures ... had no effects on the results"
or §4.3's "only minor performance gains" are statements about the
*difference* between two stochastic measurements.  This module provides
Welch's unequal-variance t-test built on the package's own Student-t
CDF (no scipy dependency), operating directly on
:class:`~repro.sim.stats.RunningStats` summaries so experiment results
can be compared without retaining raw observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.stats import RunningStats, student_t_cdf, student_t_ppf


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-sample comparison.

    Attributes
    ----------
    difference:
        Mean(a) − mean(b).
    t_statistic, dof:
        Welch's t and its Welch–Satterthwaite degrees of freedom.
    p_value:
        Two-sided p-value for "the means are equal".
    ci_low, ci_high:
        Confidence interval for the difference.
    confidence:
        The coverage used for the interval.
    """

    difference: float
    t_statistic: float
    dof: float
    p_value: float
    ci_low: float
    ci_high: float
    confidence: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def practically_equal(self, margin: float) -> bool:
        """Equivalence check: the CI lies entirely within ±margin.

        This is what a "no effect" claim needs — non-significance alone
        is not evidence of equality.
        """
        return -margin <= self.ci_low and self.ci_high <= margin


def welch_t_test(
    a: RunningStats,
    b: RunningStats,
    confidence: float = 0.95,
) -> ComparisonResult:
    """Welch's two-sample t-test from summary statistics.

    Both samples need at least two observations and at least one of
    them non-zero variance; a pair of identical zero-variance samples
    compares equal with p = 1.
    """
    if a.count < 2 or b.count < 2:
        raise ValueError("both samples need at least two observations")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")

    var_a, var_b = a.variance, b.variance
    se_a, se_b = var_a / a.count, var_b / b.count
    se = math.sqrt(se_a + se_b)
    difference = a.mean - b.mean

    if se == 0.0:
        # Zero variance on both sides: the means either agree exactly
        # or differ with certainty.
        equal = difference == 0.0
        return ComparisonResult(
            difference=difference,
            t_statistic=0.0 if equal else math.inf,
            dof=float(a.count + b.count - 2),
            p_value=1.0 if equal else 0.0,
            ci_low=difference,
            ci_high=difference,
            confidence=confidence,
        )

    t_stat = difference / se
    # Welch–Satterthwaite degrees of freedom.
    dof = (se_a + se_b) ** 2 / (
        se_a**2 / (a.count - 1) + se_b**2 / (b.count - 1)
    )
    dof = max(1.0, dof)

    p_value = 2.0 * (1.0 - student_t_cdf(abs(t_stat), dof))
    half = student_t_ppf(0.5 + confidence / 2.0, int(round(dof))) * se
    return ComparisonResult(
        difference=difference,
        t_statistic=t_stat,
        dof=dof,
        p_value=min(1.0, max(0.0, p_value)),
        ci_low=difference - half,
        ci_high=difference + half,
        confidence=confidence,
    )


def compare_means(
    mean_a: float,
    mean_b: float,
    relative_margin: float = 0.05,
) -> bool:
    """Quick scalar check: do two means agree within a relative margin?

    Convenience for bench assertions where only point estimates exist.
    """
    scale = max(abs(mean_a), abs(mean_b), 1e-12)
    return abs(mean_a - mean_b) / scale <= relative_margin
