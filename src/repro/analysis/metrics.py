"""The paper's evaluation metric and its decomposition.

§4.2.1: "The duration is computed as the mean duration of an invocation
plus the migration cost evenly distributed to the invocations belonging
to that migration."  Concretely, for every move-block b with N_b calls,
migration cost m_b and call durations d_1..d_N, each call contributes
the observation ``d_i + m_b / N_b``; the *mean communication time per
call* (Figs 8, 12, 14, 16) is the mean of those observations, and its
two addends are reported separately as the *mean duration of one call*
(Fig 10) and the *mean migration time per call* (Fig 11).

System-initiated migrations (the reinstantiation policy's end-time
moves) belong to no block; their cost is folded into the migration
component at finalization so nothing is dropped.
"""

from __future__ import annotations

from typing import Optional

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.sim.stats import RunningStats
from repro.sim.stopping import PrecisionStopping, StoppingConfig


class MetricsCollector:
    """Aggregates per-block observations into the paper's metrics."""

    def __init__(self, stopping: Optional[StoppingConfig] = None):
        self.stopping = PrecisionStopping(stopping or StoppingConfig())
        #: Mean of (duration + migration share) per call — the headline
        #: metric, with the CI-based stopping rule attached.
        self.per_call = RunningStats()
        #: Mean raw call duration (Fig 10 component).
        self.call_durations = RunningStats()
        #: Migration cost totals (Fig 11 component).
        self.total_migration_cost = 0.0
        self.system_migration_cost = 0.0
        #: Migration cost of blocks that performed zero calls (cannot be
        #: amortized per §4.2.1; tracked so it is visible, and included
        #: in the aggregate mean's numerator).
        self.unamortized_migration_cost = 0.0
        self.blocks = 0
        self.granted_blocks = 0
        self.rejected_blocks = 0
        self.empty_blocks = 0

    # -- recording ----------------------------------------------------------------

    def record_block(self, block: MoveBlock) -> None:
        """Fold one completed move-block into the metrics."""
        self.blocks += 1
        if block.granted:
            self.granted_blocks += 1
        else:
            self.rejected_blocks += 1

        if block.call_count == 0:
            self.empty_blocks += 1
            self.unamortized_migration_cost += block.migration_cost
            return

        self.total_migration_cost += block.migration_cost
        for duration in block.call_durations:
            self.call_durations.add(duration)
        for observation in block.per_call_observations():
            self.per_call.add(observation)
            self.stopping.add(observation)

    def finalize(self, policy: Optional[MigrationPolicy] = None) -> None:
        """Fold in policy-level (system-initiated) migration cost."""
        if policy is not None:
            self.system_migration_cost = policy.system_migration_cost

    # -- the paper's metrics ------------------------------------------------------------

    @property
    def call_count(self) -> int:
        """Total invocations recorded."""
        return self.call_durations.count

    @property
    def mean_call_duration(self) -> float:
        """Fig 10: mean duration of one call."""
        return self.call_durations.mean if self.call_count else 0.0

    @property
    def mean_migration_time_per_call(self) -> float:
        """Fig 11: all migration cost spread over all calls."""
        if self.call_count == 0:
            return 0.0
        total = (
            self.total_migration_cost
            + self.system_migration_cost
            + self.unamortized_migration_cost
        )
        return total / self.call_count

    @property
    def mean_communication_time_per_call(self) -> float:
        """Figs 8/12/14/16: call duration plus amortized migration."""
        if self.call_count == 0:
            return 0.0
        return self.mean_call_duration + self.mean_migration_time_per_call

    def should_stop(self) -> bool:
        """Delegate to the §4.1 stopping rule."""
        return self.stopping.should_stop()

    def summary(self) -> dict:
        """Machine-readable snapshot for reports and EXPERIMENTS.md."""
        return {
            "mean_communication_time_per_call": self.mean_communication_time_per_call,
            "mean_call_duration": self.mean_call_duration,
            "mean_migration_time_per_call": self.mean_migration_time_per_call,
            "calls": self.call_count,
            "blocks": self.blocks,
            "granted_blocks": self.granted_blocks,
            "rejected_blocks": self.rejected_blocks,
            "empty_blocks": self.empty_blocks,
            "stopping": self.stopping.summary(),
        }
