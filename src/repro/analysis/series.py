"""Small utilities over sampled (x, y) curves."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Curve:
    """A sampled curve with a label (one figure series)."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal lengths")

    @classmethod
    def from_points(cls, label: str, points: Sequence[Tuple[float, float]]):
        """Build from (x, y) pairs."""
        xs, ys = zip(*points) if points else ((), ())
        return cls(label=label, x=tuple(xs), y=tuple(ys))

    def value_at(self, x: float) -> float:
        """Linear interpolation (clamped at the ends)."""
        return float(np.interp(x, self.x, self.y))

    def max(self) -> float:
        """Largest y value."""
        return max(self.y)

    def min(self) -> float:
        """Smallest y value."""
        return min(self.y)

    def dominates(self, other: "Curve", slack: float = 0.0) -> bool:
        """True if this curve is <= the other everywhere (plus slack).

        'Dominates' in the *better-performance* sense of the paper's
        figures, where lower communication time wins.
        """
        if self.x != other.x:
            raise ValueError("curves must share the x grid")
        return all(a <= b + slack for a, b in zip(self.y, other.y))

    def roughly_flat(self, tolerance: float = 0.15) -> bool:
        """True when max deviation from the mean is within tolerance
        (relative) — e.g. a sedentary baseline."""
        mean = sum(self.y) / len(self.y)
        if mean == 0:
            return all(abs(v) <= tolerance for v in self.y)
        return all(abs(v - mean) / abs(mean) <= tolerance for v in self.y)


def spread(curves: Sequence[Curve]) -> float:
    """Largest pairwise max-gap between curves sharing an x grid.

    Used by the topology ablation: "no effect on the results" means a
    small spread between per-topology curves.
    """
    if len(curves) < 2:
        return 0.0
    worst = 0.0
    for i, a in enumerate(curves):
        for b in curves[i + 1 :]:
            if a.x != b.x:
                raise ValueError("curves must share the x grid")
            gap = max(abs(p - q) for p, q in zip(a.y, b.y))
            worst = max(worst, gap)
    return worst
