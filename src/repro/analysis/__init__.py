"""Analysis layer: the paper's metrics, break-even finding, curves."""

from repro.analysis.breakeven import break_even, crossings, growth_rate, is_sublinear
from repro.analysis.metrics import MetricsCollector
from repro.analysis.series import Curve, spread
from repro.analysis.significance import ComparisonResult, compare_means, welch_t_test

__all__ = [
    "ComparisonResult",
    "Curve",
    "MetricsCollector",
    "break_even",
    "compare_means",
    "crossings",
    "growth_rate",
    "is_sublinear",
    "spread",
    "welch_t_test",
]
