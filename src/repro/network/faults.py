"""Link-level fault injection: message loss and partitions.

The paper motivates migration partly by availability (§2.2) but models
a perfectly reliable interconnect; every message sent is delivered.
:class:`LinkFaultModel` adds the two classic link failure modes on top
of :class:`~repro.network.network.Network`:

* *lossy links* — every remote message is dropped independently with a
  configurable probability (globally or per directed link);
* *down links / partitions* — a link (or the whole cut between two node
  groups) can be taken down administratively or by a schedule, in which
  case every message on it is dropped deterministically until the link
  is restored.

The model is strictly pay-for-what-you-use: a network without a fault
model installed takes the exact same code path and draws the exact same
random numbers as before this layer existed, and an installed model
with zero loss and no down links never touches its random stream — so
fault-free runs stay bit-identical to the seed reproduction.

Local messages (``src == dst``) never fail: intra-node delivery does
not cross the network.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.sim.rng import Stream

Link = Tuple[int, int]


class LinkFaultModel:
    """Loss probabilities and up/down state for every directed link.

    Parameters
    ----------
    loss_probability:
        Default probability that a remote message is dropped (applied
        to every directed link without a specific override).
    link_loss:
        Optional per-directed-link ``{(src, dst): probability}``
        overrides.
    stream:
        Random stream for the loss draws.  Usually left ``None`` and
        bound by :meth:`repro.network.network.Network.install_faults`
        to the ``"network.faults"`` stream so loss draws never perturb
        latency sampling.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        link_loss: Optional[Dict[Link, float]] = None,
        stream: Optional[Stream] = None,
    ):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.loss_probability = loss_probability
        self.link_loss: Dict[Link, float] = dict(link_loss or {})
        for link, p in self.link_loss.items():
            if not 0.0 <= p < 1.0:
                raise ValueError(
                    f"loss probability for link {link} must be in [0, 1), got {p}"
                )
        self._stream = stream
        self._down_links: Set[Link] = set()
        # Accounting (read by tests and the analysis layer).
        self.dropped_messages = 0
        self.dropped_by_link: Dict[Link, int] = {}

    # -- wiring ---------------------------------------------------------------

    def bind(self, stream: Stream) -> None:
        """Attach the random stream used for loss draws."""
        self._stream = stream

    # -- link state -----------------------------------------------------------

    def fail_link(self, a: int, b: int) -> None:
        """Take the link between ``a`` and ``b`` down (both directions)."""
        self._down_links.add((a, b))
        self._down_links.add((b, a))

    def restore_link(self, a: int, b: int) -> None:
        """Bring the link between ``a`` and ``b`` back up."""
        self._down_links.discard((a, b))
        self._down_links.discard((b, a))

    def partition(self, group_a: Iterable[int], group_b: Iterable[int]) -> None:
        """Cut every link between the two node groups."""
        for a in group_a:
            for b in group_b:
                if a != b:
                    self.fail_link(a, b)

    def heal(self) -> None:
        """Restore every down link."""
        self._down_links.clear()

    def is_link_down(self, src: int, dst: int) -> bool:
        """Whether the directed link is administratively down."""
        return (src, dst) in self._down_links

    @property
    def down_links(self) -> Set[Link]:
        """Snapshot of the directed links currently down."""
        return set(self._down_links)

    # -- the drop decision ----------------------------------------------------

    def loss_for(self, src: int, dst: int) -> float:
        """Effective loss probability of one message on ``src → dst``."""
        if src == dst:
            return 0.0
        if (src, dst) in self._down_links:
            return 1.0
        return self.link_loss.get((src, dst), self.loss_probability)

    def should_drop(self, src: int, dst: int) -> bool:
        """Decide (and account) whether one message is lost.

        Deterministically ``False`` for local messages and zero-loss
        links — no random draw happens, which is what keeps fault-free
        runs bit-identical.  Deterministically ``True`` on down links.
        """
        p = self.loss_for(src, dst)
        if p <= 0.0:
            return False
        if p < 1.0:
            if self._stream is None:
                raise RuntimeError(
                    "LinkFaultModel has no random stream bound; install it "
                    "on a Network (or call bind()) before sampling losses"
                )
            if self._stream.uniform() >= p:
                return False
        self.dropped_messages += 1
        link = (src, dst)
        self.dropped_by_link[link] = self.dropped_by_link.get(link, 0) + 1
        return True

    def __repr__(self) -> str:
        return (
            f"<LinkFaultModel loss={self.loss_probability} "
            f"overrides={len(self.link_loss)} down={len(self._down_links)} "
            f"dropped={self.dropped_messages}>"
        )
