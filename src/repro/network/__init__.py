"""Network substrate: topologies, latency models, message accounting,
link fault injection."""

from repro.network.faults import LinkFaultModel
from repro.network.latency import (
    DeterministicLatency,
    LatencyModel,
    NormalizedExponentialLatency,
    PerHopExponentialLatency,
)
from repro.network.network import Network
from repro.network.topology import (
    TOPOLOGIES,
    FullyConnected,
    Grid,
    Line,
    Ring,
    Star,
    Topology,
    make_topology,
)

__all__ = [
    "DeterministicLatency",
    "FullyConnected",
    "Grid",
    "LatencyModel",
    "Line",
    "LinkFaultModel",
    "Network",
    "NormalizedExponentialLatency",
    "PerHopExponentialLatency",
    "Ring",
    "Star",
    "TOPOLOGIES",
    "Topology",
    "make_topology",
]
