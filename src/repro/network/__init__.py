"""Network substrate: topologies, latency models, message accounting,
link fault injection."""

from repro.network.faults import LinkFaultModel
from repro.network.latency import (
    DeterministicLatency,
    LatencyModel,
    NormalizedExponentialLatency,
    PerHopExponentialLatency,
    ShiftedExponentialLatency,
)
from repro.network.network import Network
from repro.network.topology import (
    TOPOLOGIES,
    FullyConnected,
    Grid,
    Line,
    Ring,
    Star,
    Topology,
    make_topology,
)

def __getattr__(name):
    # ShardRouter sits atop the sharded-kernel package, which imports
    # most of the runtime (and, transitively, this package); loading it
    # lazily keeps ``import repro.network`` cycle-free.  SimTransport
    # pulls in the runtime's Transport ABC and is deferred for the same
    # reason.
    if name == "ShardRouter":
        from repro.network.shardrouter import ShardRouter

        return ShardRouter
    if name == "SimTransport":
        from repro.network.simbackend import SimTransport

        return SimTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DeterministicLatency",
    "FullyConnected",
    "Grid",
    "LatencyModel",
    "Line",
    "LinkFaultModel",
    "Network",
    "NormalizedExponentialLatency",
    "PerHopExponentialLatency",
    "Ring",
    "ShardRouter",
    "SimTransport",
    "ShiftedExponentialLatency",
    "Star",
    "TOPOLOGIES",
    "Topology",
    "make_topology",
]
