"""Network facade: message transmission as a simulation activity.

:class:`Network` binds a topology and a latency model to the simulation
environment.  Runtime components call :meth:`Network.transmit` inside a
process (``yield from``) to spend the latency of one message, and the
network keeps aggregate message accounting used by the analysis layer
(remote vs local message counts, total network time).

With a :class:`~repro.network.faults.LinkFaultModel` installed,
``transmit`` may instead raise
:class:`~repro.errors.MessageLostError` after the latency has elapsed —
the point in time where the receiver would have seen the message.
Without one the delivery path is unchanged.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import MessageLostError
from repro.network.faults import LinkFaultModel
from repro.network.latency import LatencyModel, NormalizedExponentialLatency
from repro.network.topology import FullyConnected, Topology
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams, Stream
from repro.telemetry.core import NULL_TELEMETRY, Telemetry


class Network:
    """Simulated interconnect between the nodes of the system.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        Physical structure (default: fully connected, as in the paper).
    latency:
        Latency model (default: normalized Exp(1), as in the paper).
    streams:
        Random-stream factory; the network draws from the stream named
        ``"network.latency"`` (and ``"network.faults"`` when a fault
        model is installed).
    fault_model:
        Optional link fault model; may also be installed later via
        :meth:`install_faults`.
    telemetry:
        Metrics sink; per-link message counters, a latency histogram
        and drop counters when enabled.  The default NULL sink reduces
        instrumentation to one cached-boolean branch per message.
    """

    def __init__(
        self,
        env: Environment,
        topology: Optional[Topology] = None,
        latency: Optional[LatencyModel] = None,
        streams: Optional[RandomStreams] = None,
        fault_model: Optional[LinkFaultModel] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.env = env
        self.topology = topology or FullyConnected(1)
        self.latency = latency or NormalizedExponentialLatency(1.0)
        self._streams = streams or RandomStreams(0)
        self._stream: Stream = self._streams.stream("network.latency")
        # Aggregate accounting.
        self.remote_messages = 0
        self.local_messages = 0
        self.total_latency = 0.0
        self.dropped_messages = 0
        self.faults: Optional[LinkFaultModel] = None
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_latency = metrics.histogram("network.latency")
            self._m_local = metrics.counter("network.messages", scope="local")
            self._m_remote = metrics.counter("network.messages", scope="remote")
        if fault_model is not None:
            self.install_faults(fault_model)

    def install_faults(self, model: LinkFaultModel) -> None:
        """Install a link fault model, binding its loss-draw stream.

        The model draws from the dedicated ``"network.faults"`` stream
        so enabling faults never perturbs latency sampling.
        """
        model.bind(self._streams.stream("network.faults"))
        self.faults = model

    @property
    def size(self) -> int:
        """Number of nodes the network connects."""
        return self.topology.size

    def sample_latency(
        self, src: int, dst: int, stream: Optional[Stream] = None
    ) -> float:
        """Draw (and account) the latency of one message.

        ``stream`` overrides the shared ``"network.latency"`` stream.
        Background traffic (e.g. failure-detector heartbeats) passes
        its own stream so enabling it never perturbs the latency draws
        of application messages — that is what keeps detector-enabled
        fault-free runs bit-identical to the oracle path.
        """
        delay = self.latency.sample(src, dst, stream or self._stream)
        if src == dst:
            self.local_messages += 1
        else:
            self.remote_messages += 1
        self.total_latency += delay
        if self._telemetry_on:
            (self._m_local if src == dst else self._m_remote).inc()
            self._m_latency.observe(delay)
            self.telemetry.metrics.counter(
                "network.link.messages", src=src, dst=dst
            ).inc()
            self.telemetry.metrics.counter(
                "network.link.time", src=src, dst=dst
            ).inc(delay)
        return delay

    def transmit(
        self, src: int, dst: int, stream: Optional[Stream] = None
    ) -> Generator:
        """Process fragment that spends one message latency.

        Use as ``yield from network.transmit(a, b)`` inside a process.
        Returns the sampled latency.  ``stream`` optionally overrides
        the latency-draw stream (see :meth:`sample_latency`).

        Raises
        ------
        MessageLostError
            When the installed fault model drops the message.  The
            latency has already been spent at that point (the loss
            happens on the wire); the *sender* additionally has to wait
            out its timeout before it can react — that is the retry
            layer's job (:mod:`repro.runtime.retry`).
        """
        delay = self.sample_latency(src, dst, stream)
        dropped = self.faults is not None and self.faults.should_drop(src, dst)
        if delay > 0:
            yield self.env.sleep(delay)
        if dropped:
            self.dropped_messages += 1
            if self._telemetry_on:
                self.telemetry.metrics.counter(
                    "network.dropped", src=src, dst=dst
                ).inc()
            raise MessageLostError(
                f"message {src} -> {dst} lost after {delay:.3f}"
            )
        return delay

    def round_trip(self, src: int, dst: int) -> Generator:
        """Process fragment for a request/reply message pair.

        The paper charges an invocation as "a call and a result
        message" (§4.2.1); this helper spends both and returns the sum.
        """
        there = yield from self.transmit(src, dst)
        back = yield from self.transmit(dst, src)
        return there + back

    def __repr__(self) -> str:
        faults = f" dropped={self.dropped_messages}" if self.faults else ""
        return (
            f"<Network {type(self.topology).__name__}({self.topology.size}) "
            f"latency={type(self.latency).__name__} "
            f"msgs={self.remote_messages}r/{self.local_messages}l{faults}>"
        )
