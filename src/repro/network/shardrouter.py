"""Cross-shard message routing for the sharded simulation kernel.

A :class:`ShardRouter` is the seam between one shard's kernel and the
rest of a sharded run.  Transmits classify into two lanes:

* **local** — both endpoints live in this shard.  The router is not on
  this path at all: intra-shard traffic keeps using
  :meth:`repro.network.network.Network.transmit` unchanged, so the
  single-kernel hot path is untouched.
* **remote** — the destination is owned by another shard.  The message
  is serialized into the current window's outbound batch with a
  pre-sampled arrival time ``deliver_at = now + base + Exp(mean)``;
  the coordinator exchanges batches at the next barrier and the owning
  shard schedules delivery.  Because ``base`` equals the window length
  (the lookahead), ``deliver_at`` always lands at or beyond the next
  barrier — conservative synchronization never delivers into simulated
  history, and :meth:`deliver` enforces that invariant.

The router also owns the request/reply correlation table: a client
waiting on a remote call parks on a pending :class:`Event` which fires
with the measured round-trip time when the reply is delivered in a
later window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.events import Event, Timeout
from repro.sim.kernel import Environment
from repro.sim.rng import Stream
from repro.sim.shard.messages import RemoteCall, RemoteReply
from repro.telemetry.core import NULL_TELEMETRY, Telemetry


class ShardRouter:
    """One shard's gateway onto the cross-shard message fabric.

    Parameters
    ----------
    env:
        The shard's simulation environment.
    shard_id / shards:
        This shard's id and the total shard count.
    base_latency / mean_latency:
        Cross-shard link model ``base + Exp(mean)``; ``base`` must be
        positive — it is the lookahead the whole synchronization scheme
        rests on.
    stream:
        Private latency stream of this shard's cross-shard links.
    on_call:
        Callback invoked (at delivery time) for each inbound
        :class:`RemoteCall`; the shard kernel installs its server-side
        handler here.
    telemetry:
        Metrics sink; batch sizes and remote counters when enabled.
    """

    def __init__(
        self,
        env: Environment,
        shard_id: int,
        shards: int,
        base_latency: float,
        mean_latency: float,
        stream: Stream,
        on_call: Optional[Callable[[RemoteCall], None]] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        if base_latency <= 0:
            raise ConfigurationError(
                f"cross-shard base latency must be positive, got "
                f"{base_latency} (no lookahead, no conservative sync)"
            )
        if not 0 <= shard_id < shards:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range [0, {shards})"
            )
        self.env = env
        self.shard_id = shard_id
        self.shards = shards
        self.base_latency = base_latency
        self.mean_latency = mean_latency
        self._stream = stream
        self.on_call = on_call
        self._seq = 0
        self._outbox: List = []
        #: call_id -> (waiting event, send_time).
        self._pending: Dict[Tuple[int, int], Tuple[Event, float]] = {}
        # Accounting.
        self.calls_sent = 0
        self.calls_served = 0
        self.replies_sent = 0
        self.messages_delivered = 0
        self.batches_out = 0
        self.max_batch = 0
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_batch = metrics.histogram(
                "shard.remote.batch_size",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
                shard=shard_id,
            )
            self._m_sent = metrics.counter("shard.remote.sent", shard=shard_id)
            self._m_recv = metrics.counter(
                "shard.remote.delivered", shard=shard_id
            )

    # -- classification -----------------------------------------------------

    def owner_of(self, shard: int) -> int:
        """Identity helper kept for symmetry with richer partitions."""
        return shard

    def is_local(self, shard: int) -> bool:
        """Whether a destination shard is this shard (fast lane)."""
        return shard == self.shard_id

    # -- sending ------------------------------------------------------------

    def _sample_delay(self) -> float:
        return self.base_latency + self._stream.exponential(self.mean_latency)

    def send_call(self, dst_shard: int, target: int = 0) -> Event:
        """Serialize one remote request into the window batch.

        Returns the pending event the caller should ``yield``; it fires
        with the measured round-trip duration once the reply arrives.
        """
        if dst_shard == self.shard_id:
            raise ConfigurationError(
                "send_call is the remote lane; local invocations go "
                "through the shard's own Network"
            )
        if not 0 <= dst_shard < self.shards:
            raise ConfigurationError(
                f"destination shard {dst_shard} out of range "
                f"[0, {self.shards})"
            )
        now = self.env.now
        self._seq += 1
        call = RemoteCall(
            src_shard=self.shard_id,
            dst_shard=dst_shard,
            seq=self._seq,
            send_time=now,
            deliver_at=now + self._sample_delay(),
            target=target,
        )
        self._outbox.append(call)
        self.calls_sent += 1
        if self._telemetry_on:
            self._m_sent.inc()
        reply_event = Event(self.env)
        self._pending[call.call_id] = (reply_event, now)
        return reply_event

    def send_reply(self, call: RemoteCall, service_time: float) -> None:
        """Serialize the response to a served call into the batch."""
        now = self.env.now
        self._seq += 1
        self._outbox.append(
            RemoteReply(
                src_shard=self.shard_id,
                dst_shard=call.src_shard,
                seq=self._seq,
                call_shard=call.src_shard,
                call_seq=call.seq,
                send_time=now,
                deliver_at=now + self._sample_delay(),
                service_time=service_time,
            )
        )
        self.replies_sent += 1

    def drain(self) -> List:
        """Hand the current window's outbound messages to the barrier."""
        out, self._outbox = self._outbox, []
        self.batches_out += 1
        if len(out) > self.max_batch:
            self.max_batch = len(out)
        if self._telemetry_on:
            self._m_batch.observe(float(len(out)))
        return out

    # -- receiving ----------------------------------------------------------

    def deliver(self, messages: List) -> None:
        """Schedule one window's inbound messages into the kernel.

        ``messages`` must already be in merge order (the coordinator
        sorts by ``(deliver_at, src_shard, seq)``); scheduling in that
        order makes same-timestamp processing deterministic.
        """
        env = self.env
        now = env.now
        for message in messages:
            if message.deliver_at < now:
                raise RuntimeError(
                    f"conservative sync violated: message due at "
                    f"{message.deliver_at} arrived at shard "
                    f"{self.shard_id} after t={now}"
                )
            event = Timeout(env, message.deliver_at - now, message)
            event.callbacks.append(self._on_delivery)
            self.messages_delivered += 1
        if self._telemetry_on and messages:
            self._m_recv.inc(len(messages))

    def _on_delivery(self, event: Event) -> None:
        message = event.value
        if type(message) is RemoteReply:
            waiter, send_time = self._pending.pop(message.call_id)
            waiter.succeed(self.env.now - send_time)
        else:
            self.calls_served += 1
            handler = self.on_call
            if handler is None:
                raise RuntimeError(
                    f"shard {self.shard_id} received a RemoteCall but "
                    "has no on_call handler installed"
                )
            handler(message)

    # -- introspection ------------------------------------------------------

    @property
    def pending_calls(self) -> int:
        """Calls awaiting a reply (in flight across the fabric)."""
        return len(self._pending)

    def stats(self) -> dict:
        """Machine-readable routing counters."""
        return {
            "calls_sent": self.calls_sent,
            "calls_served": self.calls_served,
            "replies_sent": self.replies_sent,
            "messages_delivered": self.messages_delivered,
            "batches_out": self.batches_out,
            "max_batch": self.max_batch,
            "pending_calls": self.pending_calls,
        }

    def __repr__(self) -> str:
        return (
            f"<ShardRouter shard={self.shard_id}/{self.shards} "
            f"sent={self.calls_sent} served={self.calls_served} "
            f"pending={self.pending_calls}>"
        )
