"""Sim backend of the :class:`~repro.runtime.transport.Transport` seam.

:class:`~repro.network.network.Network` *is* the simulation transport —
it predates the seam and every golden trace was recorded against it, so
the adapter here adds nothing: :class:`SimTransport` presents an
existing network through the seam's contract by pure delegation.  Every
call, every counter and every random draw goes to the wrapped network
object itself, which is what makes the "bit-identical through the
seam" guarantee trivial rather than merely tested: there is no second
code path to diverge.

Importing this module also registers :class:`Network` as a virtual
subclass of the :class:`~repro.runtime.transport.Transport` ABC, so
``isinstance(network, Transport)`` holds for seam-generic code without
giving :mod:`repro.network.network` an import-time dependency on the
runtime package (which imports this one — the same cycle the lazy
``ShardRouter`` hook dodges).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.network.network import Network
from repro.runtime.transport import Transport

Transport.register(Network)


class SimTransport(Transport):
    """Seam adapter over a :class:`Network` (pure delegation).

    The adapter shares the network's accounting state rather than
    copying it: reads go through properties, so code that mixes direct
    ``network`` access with seam access sees one consistent ledger.
    """

    __slots__ = ("network",)

    def __init__(self, network: Network):
        self.network = network

    # -- the seam contract ----------------------------------------------------

    @property
    def size(self) -> int:
        return self.network.size

    def transmit(
        self, src: int, dst: int, stream=None, **kwargs
    ) -> Generator:
        """Delegate to :meth:`Network.transmit` (generator, sim time)."""
        return self.network.transmit(src, dst, stream=stream)

    def round_trip(self, src: int, dst: int) -> Generator:
        """Delegate a request/reply round trip to the wrapped network."""
        return self.network.round_trip(src, dst)

    def sample_latency(self, src: int, dst: int, stream=None) -> float:
        """Draw one link latency from the wrapped network's model."""
        return self.network.sample_latency(src, dst, stream=stream)

    # -- shared accounting (live views, not copies) ---------------------------

    @property
    def remote_messages(self) -> int:
        """Cross-node messages delivered so far."""
        return self.network.remote_messages

    @property
    def local_messages(self) -> int:
        """Same-node (zero-latency) messages delivered so far."""
        return self.network.local_messages

    @property
    def total_latency(self) -> float:
        """Sum of simulated latency over all remote messages."""
        return self.network.total_latency

    @property
    def dropped_messages(self) -> int:
        """Messages lost to injected link faults so far."""
        return self.network.dropped_messages

    def __repr__(self) -> str:
        return f"<SimTransport over {self.network!r}>"


__all__ = ["SimTransport"]
