"""Physical network topologies.

The paper's headline results assume a fully connected network; §4.1
notes the authors "also performed simulations for other structures. But
this had no effects on the results" because message latency is
normalized to the same mean for all node pairs.  We implement several
classic topologies so that claim can be re-checked (see
``benchmarks/bench_ablation_topology.py``): each topology exposes the
hop count between nodes, and the latency model decides whether hops
translate into extra delay (non-normalized mode) or not (paper mode).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, Iterable, List, Tuple


class Topology(ABC):
    """Abstract undirected network topology over ``size`` nodes."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"topology needs at least one node, got {size}")
        self.size = size

    @abstractmethod
    def neighbors(self, node: int) -> List[int]:
        """Direct neighbors of ``node``."""

    def hops(self, src: int, dst: int) -> int:
        """Number of hops on a shortest path from ``src`` to ``dst``.

        The generic implementation runs a BFS; concrete topologies with
        closed forms override it.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        seen = {src}
        frontier = deque([(src, 0)])
        while frontier:
            node, dist = frontier.popleft()
            for nxt in self.neighbors(node):
                if nxt == dst:
                    return dist + 1
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, dist + 1))
        raise ValueError(f"no path from {src} to {dst} in {self!r}")

    def diameter(self) -> int:
        """Longest shortest path in the topology."""
        return max(
            self.hops(a, b) for a in range(self.size) for b in range(self.size)
        )

    def mean_hops(self) -> float:
        """Average hops over all ordered pairs of distinct nodes."""
        if self.size == 1:
            return 0.0
        total = sum(
            self.hops(a, b)
            for a in range(self.size)
            for b in range(self.size)
            if a != b
        )
        return total / (self.size * (self.size - 1))

    def edges(self) -> List[Tuple[int, int]]:
        """Undirected edge list (each edge once, small id first)."""
        seen = set()
        for a in range(self.size):
            for b in self.neighbors(a):
                edge = (min(a, b), max(a, b))
                seen.add(edge)
        return sorted(seen)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.size:
            raise ValueError(f"node {node} out of range [0, {self.size})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} size={self.size}>"


class FullyConnected(Topology):
    """Every node is one hop from every other node (the paper's default)."""

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        return [n for n in range(self.size) if n != node]

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1


class Ring(Topology):
    """Nodes on a cycle; hop count is the circular distance."""

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        if self.size == 1:
            return []
        if self.size == 2:
            return [1 - node]
        return [(node - 1) % self.size, (node + 1) % self.size]

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        d = abs(src - dst)
        return min(d, self.size - d)


class Line(Topology):
    """Nodes on a path; hop count is |src - dst|."""

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        out = []
        if node > 0:
            out.append(node - 1)
        if node < self.size - 1:
            out.append(node + 1)
        return out

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return abs(src - dst)


class Star(Topology):
    """Node 0 is the hub; every other node connects only to it."""

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        if node == 0:
            return list(range(1, self.size))
        return [0]

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if src == 0 or dst == 0:
            return 1
        return 2


class Grid(Topology):
    """Approximately square 2-D mesh with Manhattan-distance hops."""

    def __init__(self, size: int):
        super().__init__(size)
        # Choose the most-square factorization rows x cols >= size; extra
        # cells beyond `size` simply do not exist (ragged last row).
        cols = 1
        for c in range(1, size + 1):
            if c * c >= size:
                cols = c
                break
        self.cols = cols
        self.rows = (size + cols - 1) // cols

    def _coords(self, node: int) -> Tuple[int, int]:
        return divmod(node, self.cols)

    def neighbors(self, node: int) -> List[int]:
        self._check(node)
        r, c = self._coords(node)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                idx = nr * self.cols + nc
                if idx < self.size:
                    out.append(idx)
        return out

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        # Manhattan distance is exact for a full grid; the ragged last
        # row can force detours, so fall back to BFS in that case.
        if self.rows * self.cols == self.size:
            (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
            return abs(r1 - r2) + abs(c1 - c2)
        return super().hops(src, dst)


#: Registry of topology constructors by name (used by experiment configs).
TOPOLOGIES = {
    "full": FullyConnected,
    "ring": Ring,
    "line": Line,
    "star": Star,
    "grid": Grid,
}


def make_topology(name: str, size: int) -> Topology:
    """Instantiate a topology by registry name."""
    try:
        cls = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    return cls(size)
