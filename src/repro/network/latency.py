"""Message latency models.

The paper's model (§4.1): remote messages have exponentially distributed
latency with mean normalized to 1, identical for all node pairs; local
"messages" (caller and callee on the same node) cost nothing; network
saturation is neglected because object traffic is a small share of the
overall load.

:class:`NormalizedExponentialLatency` is that model.  The other models
exist for the robustness ablations: per-hop latency (so topology *does*
matter when normalization is switched off), and deterministic latency
for analytically checkable tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.network.topology import Topology
from repro.sim.rng import Stream


class LatencyModel(ABC):
    """Samples the latency of one message between two nodes."""

    @abstractmethod
    def sample(self, src: int, dst: int, stream: Stream) -> float:
        """Latency of one message from ``src`` to ``dst``."""

    def mean(self, src: int, dst: int) -> float:
        """Expected latency between the pair (for analytic checks)."""
        raise NotImplementedError

    def min_delay(self, src: int, dst: int) -> float:
        """Hard lower bound on any latency draw between the pair.

        This is the conservative-synchronization lookahead: a sharded
        run may advance each shard ``min_delay`` time units past the
        last barrier before a message sent by another shard could
        possibly arrive.  Purely exponential models return 0.0 — such
        links provide no lookahead and cannot carry cross-shard
        traffic.
        """
        return 0.0


class NormalizedExponentialLatency(LatencyModel):
    """The paper's model: Exp(mean) for remote messages, 0 locally.

    Parameters
    ----------
    mean:
        Mean remote-message latency; the paper normalizes this to 1 and
        expresses every other duration in multiples of it.
    """

    def __init__(self, mean: float = 1.0):
        if mean < 0:
            raise ValueError(f"mean latency must be >= 0, got {mean}")
        self.mean_latency = mean

    def sample(self, src: int, dst: int, stream: Stream) -> float:
        if src == dst:
            return 0.0
        return stream.exponential(self.mean_latency)

    def mean(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.mean_latency


class PerHopExponentialLatency(LatencyModel):
    """Exp(mean_per_hop) per topology hop — the *non*-normalized model.

    Under this model a ring network really is slower between distant
    nodes; used to show when the paper's "topology does not matter"
    claim holds and when it is an artifact of normalization.
    """

    def __init__(self, topology: Topology, mean_per_hop: float = 1.0):
        if mean_per_hop < 0:
            raise ValueError(f"mean_per_hop must be >= 0, got {mean_per_hop}")
        self.topology = topology
        self.mean_per_hop = mean_per_hop

    def sample(self, src: int, dst: int, stream: Stream) -> float:
        hops = self.topology.hops(src, dst)
        if hops == 0:
            return 0.0
        # Sum of `hops` independent exponentials (an Erlang draw).
        return sum(stream.exponential(self.mean_per_hop) for _ in range(hops))

    def mean(self, src: int, dst: int) -> float:
        return self.topology.hops(src, dst) * self.mean_per_hop


class ShiftedExponentialLatency(LatencyModel):
    """``base + Exp(mean)`` for remote messages, 0 locally.

    The shift models propagation delay under the paper's otherwise
    memoryless queueing latency.  Its purpose here is structural: the
    deterministic ``base`` is a guaranteed minimum per-link delay, which
    is exactly the lookahead a conservatively synchronized sharded
    simulation needs (:meth:`min_delay`).  With ``base = 0`` the model
    degenerates to :class:`NormalizedExponentialLatency`.
    """

    def __init__(self, base: float = 1.0, mean: float = 1.0):
        if base < 0:
            raise ValueError(f"base latency must be >= 0, got {base}")
        if mean < 0:
            raise ValueError(f"mean latency must be >= 0, got {mean}")
        self.base = base
        self.mean_latency = mean

    def sample(self, src: int, dst: int, stream: Stream) -> float:
        if src == dst:
            return 0.0
        return self.base + stream.exponential(self.mean_latency)

    def mean(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.base + self.mean_latency

    def min_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.base


class DeterministicLatency(LatencyModel):
    """Constant latency for remote messages; for closed-form test cases."""

    def __init__(self, latency: float = 1.0):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency

    def sample(self, src: int, dst: int, stream: Stream) -> float:
        return 0.0 if src == dst else self.latency

    def mean(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.latency

    def min_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.latency
