#!/usr/bin/env python3
"""Policy playground: compare all five policies on a custom workload.

Shows the full experiment API surface: build a parameter cell, run each
registered policy over it, and print the metric decomposition (call
duration vs amortized migration) side by side — including the two
"intelligent" dynamic policies the paper evaluates in §4.3.

Edit WORKLOAD below to explore your own configuration.

Run:  python examples/policy_playground.py
"""

from repro import POLICIES, SimulationParameters, StoppingConfig, run_cell

#: Tune this cell — it is the paper's Fig 15 configuration by default
#: (few nodes, many clients: co-located clients form natural blocs).
WORKLOAD = SimulationParameters(
    nodes=3,
    clients=12,
    servers_layer1=3,
    migration_duration=6.0,
    mean_calls_per_block=8.0,
    mean_intercall_time=1.0,
    mean_interblock_time=30.0,
    seed=7,
)

STOPPING = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=25_000,
)


def main() -> None:
    print(f"workload: {WORKLOAD.label()}\n")
    header = (
        f"{'policy':<17}{'comm/call':>10}{'call-dur':>10}"
        f"{'mig/call':>10}{'granted':>9}{'rejected':>9}"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for name in sorted(POLICIES):
        result = run_cell(
            WORKLOAD.with_overrides(policy=name), stopping=STOPPING
        )
        results[name] = result
        stats = result.raw["policy"]
        print(
            f"{name:<17}"
            f"{result.mean_communication_time_per_call:>10.3f}"
            f"{result.mean_call_duration:>10.3f}"
            f"{result.mean_migration_time_per_call:>10.3f}"
            f"{stats['moves_granted']:>9d}"
            f"{stats['moves_rejected']:>9d}"
        )

    best = min(
        results, key=lambda n: results[n].mean_communication_time_per_call
    )
    print(f"\nbest policy for this workload: {best}")


if __name__ == "__main__":
    main()
