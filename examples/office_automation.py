#!/usr/bin/env python3
"""Office automation: alliances keep autonomous apps from fighting.

The paper's motivating domain (§1): an office system assembled from
independently developed components — here a *document editor*, an
*archiver* and a *print spooler* — that share infrastructure objects
(a document store, an index, a format converter).  Each application
attaches the subset it works with ("its working set"), but the sets
overlap, so under conventional, unrestricted attachment every move
drags everybody's objects across the network.

The example runs the same workload three ways and prints the paper's
remedy working:

1. conventional migration + unrestricted attachment (the hazard),
2. transient placement + unrestricted attachment,
3. transient placement + alliance-scoped (A-transitive) attachment.

Run:  python examples/office_automation.py
"""

from repro import (
    AllianceManager,
    AttachmentManager,
    AttachmentMode,
    DistributedSystem,
    MigrationPrimitives,
    StoppingConfig,
    make_policy,
)


def build_office(mode: AttachmentMode, policy_name: str):
    """An 8-node office network with three apps and five shared objects."""
    system = DistributedSystem(nodes=8, seed=42, migration_duration=6.0)

    # Shared infrastructure objects (movable servers).
    store = system.create_server(node=4, name="document-store")
    index = system.create_server(node=5, name="search-index")
    converter = system.create_server(node=6, name="format-converter")
    spool = system.create_server(node=7, name="spool-queue")
    fonts = system.create_server(node=4, name="font-library")

    attachments = AttachmentManager(mode)
    alliances = AllianceManager(attachments)
    policy = make_policy(policy_name, system, attachments)
    prims = MigrationPrimitives(system, policy, attachments)

    def make_alliance(name, primary, members):
        alliance = alliances.create(name)
        alliance.admit(primary)
        for member in members:
            alliance.admit(member)
            alliance.attach(member, primary)
        return alliance

    # Each app's working set: note the overlaps (store, converter).
    editor_ws = make_alliance("editor-ws", store, [index, converter])
    archive_ws = make_alliance("archive-ws", index, [store])
    print_ws = make_alliance("print-ws", spool, [converter, fonts])

    apps = [
        ("editor", 0, store, editor_ws),
        ("archiver", 1, index, archive_ws),
        ("printer", 2, spool, print_ws),
    ]
    return system, prims, apps


def run_office(mode: AttachmentMode, policy_name: str, use_alliances: bool):
    system, prims, apps = build_office(mode, policy_name)
    stats = {}

    def app_process(env, name, node, target, alliance):
        timing = system.streams.stream(f"{name}.timing")
        total_calls = 0
        total_time = 0.0
        while True:
            yield env.timeout(timing.exponential(25.0))
            scope = prims.move_block(
                node, target, alliance=alliance if use_alliances else None
            )
            yield from scope.enter()
            for _ in range(max(1, round(timing.exponential(8.0)))):
                yield env.timeout(timing.exponential(1.0))
                result = yield from scope.call()
                total_calls += 1
                total_time += result.duration
            block = yield from scope.exit()
            total_time += block.migration_cost
            stats[name] = (total_calls, total_time)

    for name, node, target, alliance in apps:
        system.env.process(
            app_process(system.env, name, node, target, alliance),
            name=name,
        )
    system.run(until=20_000)

    label = (
        f"{policy_name:<10} + "
        f"{'A-transitive' if use_alliances else mode.value:<12}"
    )
    total_calls = sum(c for c, _ in stats.values())
    total_time = sum(t for _, t in stats.values())
    per_call = total_time / total_calls if total_calls else 0.0
    print(
        f"  {label}  mean cost/call = {per_call:5.2f}   "
        f"migrations = {system.migrations.migration_count:5d}"
    )
    return per_call


def main() -> None:
    print("office automation: three autonomous apps, overlapping working sets")
    print("(cost = call durations + amortized migration, lower is better)\n")
    hazard = run_office(AttachmentMode.UNRESTRICTED, "migration", False)
    better = run_office(AttachmentMode.UNRESTRICTED, "placement", False)
    best = run_office(AttachmentMode.A_TRANSITIVE, "placement", True)
    print()
    print(f"placement recovers {100 * (1 - better / hazard):.0f}% of the damage;")
    print(f"placement + alliances recovers {100 * (1 - best / hazard):.0f}%.")
    assert best <= better <= hazard * 1.05


if __name__ == "__main__":
    main()
