#!/usr/bin/env python3
"""Factory scheduling: the paper's Figure 1, running.

§2.3's GOM declaration::

    type tool supertype ANY is
      operations
        declare assign: visit job, move schedule -> bool;

Tools on the factory floor get jobs assigned: the *job* object visits
the tool's node (its description travels over and comes back with the
result annotations), while the *schedule* object moves there (the tool
keeps the updated schedule locally for later queries).

The example assigns a batch of jobs to tools and compares what happens
when two cells of the factory — independently developed subsystems —
share one central schedule under conventional migration vs transient
placement.

Run:  python examples/factory_scheduling.py
"""

from repro import (
    ConventionalMigration,
    DistributedSystem,
    TransientPlacement,
)
from repro.core.gom import OperationDeclaration
from repro.network.latency import DeterministicLatency


def build_factory(policy_cls):
    system = DistributedSystem(
        nodes=4, migration_duration=6.0, latency=DeterministicLatency(1.0)
    )
    policy = policy_cls(system)

    # Two tools in different cells of the factory.
    lathe = system.create_server(node=0, name="lathe")
    press = system.create_server(node=1, name="press")
    # One shared schedule and a batch of jobs at the planning node.
    schedule = system.create_server(node=3, name="schedule")
    jobs = [system.create_server(node=3, name=f"job-{i}") for i in range(4)]

    assign_to_lathe = OperationDeclaration(
        system, policy, lathe, name="assign",
        visit=("job",), move=("schedule",),
    )
    assign_to_press = OperationDeclaration(
        system, policy, press, name="assign",
        visit=("job",), move=("schedule",),
    )
    return system, schedule, jobs, assign_to_lathe, assign_to_press


def run_factory(policy_cls, label):
    system, schedule, jobs, to_lathe, to_press = build_factory(policy_cls)
    log = []

    def cell(env, op, my_jobs, tag):
        """One autonomous factory cell assigning its jobs."""
        for job in my_jobs:
            outcome = yield from op.call(2, job=job, schedule=schedule)
            log.append(
                f"  t={env.now:5.1f}  {tag}: assigned {job.name} "
                f"(schedule @node{schedule.node_id}, "
                f"params granted: {outcome.parameters_granted}/2)"
            )

    system.env.process(cell(system.env, to_lathe, jobs[:2], "lathe-cell"))
    system.env.process(cell(system.env, to_press, jobs[2:], "press-cell"))
    system.run()

    print(f"=== {label} ===")
    for line in log:
        print(line)
    print(
        f"  totals: {system.migrations.migration_count} migrations, "
        f"schedule moved {schedule.migration_count} times, "
        f"finished t={system.now:.1f}\n"
    )
    return system.now


def main() -> None:
    t_conv = run_factory(ConventionalMigration, "conventional migration")
    t_place = run_factory(TransientPlacement, "transient placement")
    print(
        f"placement finished {t_conv - t_place:.1f} time units earlier: "
        "the shared schedule stops ping-ponging between the cells."
    )


if __name__ == "__main__":
    main()
