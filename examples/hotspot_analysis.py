#!/usr/bin/env python3
"""Hot-spot analysis: when should a shared object stop migrating?

§4.2.2's operational question: an object used by many clients (a
"hot-spot") should not migrate — but below how many clients does
migration still pay?  This example sweeps the client count on the
paper's Fig 12 configuration for all three policies, prints the curves,
locates the break-even points, and issues the recommendation a
deployment tool would.

Run:  python examples/hotspot_analysis.py          (quick sweep)
      python examples/hotspot_analysis.py --full   (denser sweep)
"""

import sys

from repro import SimulationParameters, StoppingConfig, run_cell
from repro.analysis.breakeven import break_even, growth_rate

BASE = SimulationParameters(
    nodes=27,
    servers_layer1=3,
    migration_duration=6.0,
    mean_calls_per_block=8.0,
    mean_interblock_time=30.0,
    seed=0,
)

STOPPING = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=25_000,
)

POLICIES = ("sedentary", "migration", "placement")


def sweep(clients):
    curves = {p: [] for p in POLICIES}
    for c in clients:
        row = []
        for policy in POLICIES:
            result = run_cell(
                BASE.with_overrides(policy=policy, clients=c),
                stopping=STOPPING,
            )
            curves[policy].append(result.mean_communication_time_per_call)
            row.append(f"{policy}={curves[policy][-1]:5.2f}")
        print(f"  C={c:2d}: " + "  ".join(row))
    return curves


def main() -> None:
    full = "--full" in sys.argv
    clients = (
        [1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 18, 21, 25]
        if full
        else [1, 3, 6, 10, 15, 20, 25]
    )

    print("hot-spot sweep (mean communication time per call):")
    curves = sweep(clients)

    be_migration = break_even(clients, curves["migration"], curves["sedentary"])
    be_placement = break_even(clients, curves["placement"], curves["sedentary"])

    print("\nanalysis:")
    slope, _ = growth_rate(clients, curves["migration"])
    print(f"  conventional migration grows ~{slope:.2f} per extra client")
    if be_migration:
        print(
            f"  conventional migration stops paying off at "
            f"~{be_migration:.0f} clients (paper: 6)"
        )
    if be_placement:
        print(
            f"  transient placement stops paying off at "
            f"~{be_placement:.0f} clients (paper: 20)"
        )

    print("\nrecommendation:")
    print(
        "  objects shared by fewer clients than the break-even: migrate "
        "them (use placement);"
    )
    print("  hotter objects: fix() them at a well-connected node.")


if __name__ == "__main__":
    main()
