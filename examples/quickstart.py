#!/usr/bin/env python3
"""Quickstart: mobile objects, move-blocks, and the place-policy.

Builds a three-node distributed object system by hand, runs a client's
move-block against a shared server under (a) conventional migration and
(b) transient placement while a second client interferes, and prints
what happened — a minimal, fully deterministic version of the paper's
Fig 4 scenario.

Run:  python examples/quickstart.py
"""

from repro import (
    ConventionalMigration,
    DistributedSystem,
    MigrationPrimitives,
    TransientPlacement,
)
from repro.network.latency import DeterministicLatency


def run_scenario(policy_name: str) -> None:
    # A 3-node system with unit message latency and M = 6 (all times
    # are in multiples of one remote message).
    system = DistributedSystem(
        nodes=3,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )
    server = system.create_server(node=2, name="shared-service")
    policy = (
        TransientPlacement(system)
        if policy_name == "placement"
        else ConventionalMigration(system)
    )
    prims = MigrationPrimitives(system, policy)

    def application(env, name, client_node, calls):
        """One autonomous component: move the server here, use it."""
        scope = prims.move_block(client_node, server)
        yield from scope.enter()
        granted = "granted" if scope.block.granted else "REJECTED (locked)"
        print(
            f"  t={env.now:5.1f}  {name}: move {granted}, "
            f"server now at node {server.node_id}"
        )
        for _ in range(calls):
            result = yield from scope.call()
            if result.duration:
                print(
                    f"  t={env.now:5.1f}  {name}: remote call "
                    f"took {result.duration:.1f}"
                )
        yield from scope.exit()
        block = scope.block
        print(
            f"  t={env.now:5.1f}  {name}: done — {block.call_count} calls, "
            f"call time {block.total_call_time:.1f}, "
            f"migration cost {block.migration_cost:.1f}"
        )

    # Two independently developed components issue conflicting moves:
    # exactly the non-monolithic hazard of the paper.
    system.env.process(application(system.env, "app-A @node0", 0, 4))
    system.env.process(application(system.env, "app-B @node1", 1, 4))
    system.run()

    print(
        f"  totals: {system.migrations.migration_count} migrations, "
        f"{system.network.remote_messages} remote messages, "
        f"finished at t={system.now:.1f}\n"
    )


def main() -> None:
    print("=== conventional migration (apps steal the server) ===")
    run_scenario("migration")
    print("=== transient placement (first holder wins, loser calls remotely) ===")
    run_scenario("placement")


if __name__ == "__main__":
    main()
