#!/usr/bin/env python3
"""Alliance distribution policies and live state monitoring.

§3.4: "an alliance defines a cooperation-policy between a set of
objects.  Additionally, an alliance can define a distribution policy."

A document-pipeline alliance (parser → analyzer → renderer) processes
batches.  The example applies the three built-in distribution policies
and watches the effect with a :class:`~repro.sim.monitor.StateMonitor`:

* ``spread``     — members across nodes (availability placement);
* ``collocate``  — everything on one node (performance placement);
* ``anchor``     — the pipeline follows its first stage around.

Run:  python examples/alliance_distribution.py
"""

from repro import AllianceManager, DistributedSystem
from repro.core.distribution import (
    AnchorToMember,
    CollocateMembers,
    SpreadMembers,
)
from repro.network.latency import DeterministicLatency
from repro.sim.monitor import StateMonitor


def build_pipeline():
    system = DistributedSystem(
        nodes=6, migration_duration=6.0, latency=DeterministicLatency(1.0)
    )
    manager = AllianceManager()
    pipeline = manager.create("doc-pipeline")
    stages = [
        system.create_server(node=i, name=name)
        for i, name in enumerate(("parser", "analyzer", "renderer"))
    ]
    for stage in stages:
        pipeline.admit(stage)
    # The pipeline's cooperation context: stages attached in order.
    pipeline.attach(stages[1], stages[0])
    pipeline.attach(stages[2], stages[1])
    return system, pipeline, stages


def process_batch(system, stages, client_node):
    """One document batch: a chained call through the pipeline.

    The client invokes the parser, which nests a call to the analyzer,
    which nests a call to the renderer — so internal hops are free when
    the stages are collocated.
    """

    def chain(depth):
        if depth >= len(stages):
            return None

        def body(callee_node):
            yield from system.invocations.invoke(
                callee_node, stages[depth], body=chain(depth + 1)
            )

        return body

    result = yield from system.invocations.invoke(
        client_node, stages[0], body=chain(1)
    )
    return result.duration


def run_with_policy(policy_name):
    system, pipeline, stages = build_pipeline()
    monitor = StateMonitor(system.env, interval=10.0)
    monitor.probe(
        "distinct_nodes",
        lambda: len({s.node_id for s in stages}),
    )
    monitor.start()

    if policy_name == "collocate":
        policy = CollocateMembers(system, pipeline, home_node=5)
    elif policy_name == "spread":
        policy = SpreadMembers(system, pipeline, nodes=[3, 4, 5])
    else:
        policy = AnchorToMember(system, pipeline, anchor=stages[0])

    batch_times = []

    def driver(env):
        # Apply the distribution policy, then run batches from node 0.
        yield from policy.apply()
        for _ in range(20):
            elapsed = yield from process_batch(system, stages, 0)
            batch_times.append(elapsed)
            yield env.timeout(5.0)

    system.env.process(driver(system.env))
    system.run(until=500)

    layout = monitor.stats("distinct_nodes")
    mean_batch = sum(batch_times) / len(batch_times)
    print(
        f"  {policy_name:<10} relocations={policy.relocations}  "
        f"mean batch time={mean_batch:5.2f}  "
        f"distinct nodes (avg)={layout.mean:.1f}"
    )
    return mean_batch


def main() -> None:
    print("document pipeline under the three distribution policies")
    print("(3 chained stage calls per batch, client at node 0):\n")
    spread = run_with_policy("spread")
    collocated = run_with_policy("collocate")
    anchored = run_with_policy("anchor")
    print()
    print(
        f"collocation cuts batch latency by "
        f"{100 * (1 - collocated / spread):.0f}% vs spreading;"
    )
    print(
        "anchoring matches collocation while letting the anchor keep "
        "migrating with its users."
    )
    assert collocated <= spread
    assert anchored <= spread


if __name__ == "__main__":
    main()
