#!/usr/bin/env python3
"""Replication outlook: the paper's closing question, answered live.

§5: "It seems worthwhile to investigate whether similar negative
effects as we have shown for object migration arise for other
mechanisms like replication and fragmentation."

This example sweeps the read ratio of a shared-object workload under
three replication policies and prints the crossover: eager replication
(every autonomous component replicates on first remote read) wins
easily when reads dominate and then degrades *below the no-replication
baseline* once writes appear — exactly the migration story transposed.
A bounded threshold policy plays the place-policy's role.

Run:  python examples/replication_outlook.py
"""

from repro.replication import ReplicationParameters, run_replication_cell
from repro.sim.stopping import StoppingConfig

STOPPING = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

READ_RATIOS = (0.99, 0.95, 0.9, 0.8, 0.7, 0.5)
POLICIES = ("none", "eager", "threshold")


def main() -> None:
    print("replication in a non-monolithic system (D=12, C=8, 3 objects)")
    print("mean operation time by read ratio (lower is better):\n")

    header = f"{'read ratio':>10}" + "".join(f"{p:>12}" for p in POLICIES)
    print(header)
    print("-" * len(header))

    curves = {p: [] for p in POLICIES}
    for rr in READ_RATIOS:
        row = [f"{rr:>10.2f}"]
        for policy in POLICIES:
            result = run_replication_cell(
                ReplicationParameters(policy=policy, read_ratio=rr, seed=0),
                stopping=STOPPING,
            )
            curves[policy].append(result.mean_op_time)
            row.append(f"{result.mean_op_time:>12.3f}")
        print("".join(row))

    print("\nfindings:")
    speedup = curves["none"][0] / curves["eager"][0]
    print(
        f"  read-heavy (99% reads): eager replication is {speedup:.1f}x "
        "faster than no replication"
    )
    slowdown = curves["eager"][-1] / curves["none"][-1]
    print(
        f"  write-heavy (50% reads): eager replication is {slowdown:.1f}x "
        "SLOWER than no replication - invalidation thrash,"
    )
    print("  the same non-monolithic conflict the paper shows for migration.")
    print(
        "  the threshold policy (bounded replicas, earned by repeated "
        "remote reads)"
    )
    print("  keeps the read-heavy win and never crosses the baseline:")
    worst = max(
        t / n for t, n in zip(curves["threshold"], curves["none"])
    )
    print(f"  its worst case is {worst:.2f}x the baseline.")


if __name__ == "__main__":
    main()
