# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full figures figures-paper examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Full paper sweeps under the default stopping rule.
bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every figure table on 8 workers.
figures:
	repro-experiment all --workers 8

# The §4.1 stopping rule (1% CI at p = 0.99) — slow but exact.
figures-paper:
	repro-experiment all --workers 8 --paper-precision

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       benchmarks/results .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
