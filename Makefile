# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-faults test-chaos test-telemetry \
        test-versioning test-shard test-live test-wal bench bench-kernel \
        bench-shard bench-full figures figures-paper examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

# The fault-tolerance layer (loss, retry, rollback, leases) end to end.
# Workload seeds are fixed inside the tests; the hypothesis suite gets a
# pinned derandomized profile so this target is fully reproducible.
test-faults:
	$(PYTHON) -m pytest -q -p no:randomly \
	  --hypothesis-seed=0 \
	  tests/test_network_faults.py tests/test_runtime_retry.py \
	  tests/test_runtime_migration_abort.py tests/test_core_leases.py \
	  tests/test_prop_leases.py tests/test_availability_faulttolerance.py

# Failure detection and chaos campaigns over a small pinned seed matrix:
# every built-in scenario must survive with invariants held, and the
# heartbeat detector must be bit-identical to the oracle when fault-free.
test-chaos:
	$(PYTHON) -m pytest -q -p no:randomly \
	  tests/test_runtime_failure.py tests/test_sim_invariants.py \
	  tests/test_chaos.py tests/test_detector_golden.py

# The telemetry subsystem: metric instruments, span lifecycle,
# exporters, and the end-to-end wiring through the runtime stack.
test-telemetry:
	$(PYTHON) -m pytest -q -p no:randomly \
	  tests/test_telemetry_metrics.py tests/test_telemetry_spans.py \
	  tests/test_telemetry_export.py tests/test_telemetry_integration.py \
	  tests/test_sim_trace.py

# The versioned-migration subsystem: content hashing, the staged
# planner, the deployer's checkpoint/rollback machinery, the three
# deploy scenarios and the hypothesis restore properties (pinned seed).
test-versioning:
	$(PYTHON) -m pytest -q -p no:randomly \
	  --hypothesis-seed=0 \
	  tests/test_versioning_diff.py tests/test_versioning_planner.py \
	  tests/test_versioning_deployer.py tests/test_versioning_study.py \
	  tests/test_prop_versioning.py tests/test_errors_pickle.py

# The sharded kernel: partition plans, window messages, the router,
# both execution backends, and the determinism/statistics contract
# (shards=1 bit-identity, inline == process, closed-form round trip).
test-shard:
	$(PYTHON) -m pytest -q -p no:randomly \
	  tests/test_shard.py tests/test_shard_determinism.py

# The live runtime backend: Clock/Transport seam contracts, framing
# and dedup, the asyncio transport over real sockets (fault injection
# included), graceful degradation under delay spikes/crashes, and the
# bounded multi-process smoke (3 OS processes, 1 crash + 1 partition,
# hard wall-clock watchdog).  Writes the sim-vs-measured report to
# live_report.json (the CI artifact).
test-live:
	$(PYTHON) -m pytest -q -p no:randomly \
	  --hypothesis-seed=0 \
	  tests/test_runtime_clock.py tests/test_live_framing.py \
	  tests/test_live_transport.py tests/test_live_degradation.py \
	  tests/test_live_supervisor.py tests/test_prop_retry.py \
	  tests/test_live_telemetry.py tests/test_errors_pickle.py
	PYTHONPATH=src $(PYTHON) -m repro.experiments.cli live --fast \
	  --json live_report.json

# The crash-tolerant control plane: WAL format/replay unit tests, the
# hypothesis property suite (prefix-replay idempotence, single-host
# invariant, torn-tail tolerance — pinned seed), and the recovery
# suite, which SIGKILLs a real arbiter mid-migration under both
# arbitration modes and checks the in-doubt settlement verdicts.
test-wal:
	$(PYTHON) -m pytest -q -p no:randomly \
	  --hypothesis-seed=0 \
	  tests/test_live_wal.py tests/test_prop_wal.py \
	  tests/test_live_recovery.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Kernel microbenchmarks only, with machine-readable results at the repo
# root (BENCH_kernel.json) and a copy under benchmarks/results/.
bench-kernel:
	mkdir -p benchmarks/results
	$(PYTHON) -m pytest benchmarks/bench_kernel.py --benchmark-only \
	  --benchmark-json=BENCH_kernel.json
	cp BENCH_kernel.json benchmarks/results/BENCH_kernel.json

# Sharded-kernel scaling, speedup and hot-spot capacity, with
# machine-readable results at the repo root (BENCH_shard.json) and a
# copy under benchmarks/results/.
bench-shard:
	mkdir -p benchmarks/results
	$(PYTHON) -m pytest benchmarks/bench_shard.py --benchmark-only \
	  -p no:randomly --benchmark-json=BENCH_shard.json
	cp BENCH_shard.json benchmarks/results/BENCH_shard.json

# Full paper sweeps under the default stopping rule.
bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every figure table on 8 workers.
figures:
	repro-experiment all --workers 8

# The §4.1 stopping rule (1% CI at p = 0.99) — slow but exact.
figures-paper:
	repro-experiment all --workers 8 --paper-precision

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       benchmarks/results .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
