"""Unit tests for lease-based place-policy locks and the sweeper."""

import pytest

from repro.core.locking import LeaseSweeper, LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment


class StubHealth:
    def __init__(self, down=()):
        self.down = set(down)

    def is_down(self, node_id):
        return node_id in self.down


def make_obj(env, object_id=0, node=0):
    return DistributedObject(
        env, object_id=object_id, node_id=node, name=f"obj-{object_id}"
    )


def advance(env, until):
    env.timeout(until - env.now)
    env.run()


class TestConstruction:
    def test_leases_require_env(self):
        with pytest.raises(ValueError, match="environment"):
            LockManager(lease_duration=10.0)

    def test_lease_duration_positive(self):
        with pytest.raises(ValueError, match="positive"):
            LockManager(env=Environment(), lease_duration=0.0)

    def test_default_manager_has_no_leases(self):
        locks = LockManager()
        assert not locks.leases_enabled


class TestLeaseExpiry:
    def test_lock_held_until_expiry(self, env):
        locks = LockManager(env=env, lease_duration=10.0)
        obj = make_obj(env)
        block = MoveBlock(1, obj)
        locks.lock(obj, block)
        assert locks.lease_of(block) == 10.0

        advance(env, 9.9)
        assert locks.is_locked(obj)
        advance(env, 10.0)
        # Lazy reclamation: the touch itself reaps the expired lease.
        assert not locks.is_locked(obj)
        assert obj.lock_holder is None
        assert locks.leases_expired == 1

    def test_expired_holder_loses_to_new_mover(self, env):
        locks = LockManager(env=env, lease_duration=5.0)
        obj = make_obj(env)
        stale = MoveBlock(1, obj)
        locks.lock(obj, stale)
        advance(env, 7.0)
        fresh = MoveBlock(2, obj)
        # No PolicyError: the stale lease is reaped and the grant wins.
        locks.lock(obj, fresh)
        assert locks.holder(obj) is fresh
        # The stale block's late end is the §3.2 ignored end-request.
        assert locks.release_block(stale) == 0
        assert locks.holder(obj) is fresh

    def test_each_grant_refreshes_the_lease(self, env):
        locks = LockManager(env=env, lease_duration=10.0)
        a, b = make_obj(env, 0), make_obj(env, 1)
        block = MoveBlock(1, a)
        locks.lock(a, block)
        advance(env, 8.0)
        locks.lock(b, block)
        assert locks.lease_of(block) == 18.0
        advance(env, 12.0)
        # The refresh kept the first lock alive too.
        assert locks.is_locked(a)

    def test_live_holder_semantics_unchanged(self, env):
        locks = LockManager(env=env, lease_duration=100.0)
        obj = make_obj(env)
        block = MoveBlock(1, obj)
        locks.lock(obj, block)
        with pytest.raises(PolicyError, match="already locked"):
            locks.lock(obj, MoveBlock(2, obj))
        assert locks.release_block(block) == 1
        assert not locks.is_locked(obj)

    def test_expire_due_sweeps_everything_overdue(self, env):
        locks = LockManager(env=env, lease_duration=5.0)
        objs = [make_obj(env, i) for i in range(3)]
        early = MoveBlock(1, objs[0])
        locks.lock_all(objs[:2], early)
        advance(env, 4.0)
        late = MoveBlock(2, objs[2])
        locks.lock(objs[2], late)
        advance(env, 6.0)
        assert locks.expire_due() == 2  # early's two locks, late survives
        assert locks.held_blocks() == [late]
        assert locks.leases_expired == 2


class TestCrashReclamation:
    def test_break_crashed_releases_only_dead_holders(self, env):
        locks = LockManager(env=env, lease_duration=1_000.0)
        a, b = make_obj(env, 0), make_obj(env, 1)
        dead = MoveBlock(1, a)
        alive = MoveBlock(2, b)
        locks.lock(a, dead)
        locks.lock(b, alive)
        released = locks.break_crashed(StubHealth(down={1}))
        assert released == 1
        assert not locks.is_locked(a)
        assert locks.holder(b) is alive
        assert locks.leases_broken == 1

    def test_break_crashed_works_without_leases(self):
        # Crash reclamation is orthogonal to expiry: even a no-lease
        # manager can break a dead holder's locks.
        locks = LockManager()
        env = Environment()
        obj = make_obj(env)
        block = MoveBlock(4, obj)
        locks.lock(obj, block)
        assert locks.break_crashed(StubHealth(down={4})) == 1
        assert not locks.is_locked(obj)


class TestLeaseSweeper:
    def test_interval_validated(self, env):
        with pytest.raises(ValueError, match="interval"):
            LeaseSweeper(env, LockManager(), interval=0.0)

    def test_periodic_sweep_reclaims_untouched_locks(self, env):
        locks = LockManager(env=env, lease_duration=5.0)
        obj = make_obj(env)
        locks.lock(obj, MoveBlock(1, obj))
        sweeper = LeaseSweeper(env, locks, interval=4.0)
        sweeper.start()
        sweeper.start()  # idempotent
        env.run(until=21.0)
        # Nobody ever touched the object again; the sweeper alone
        # reclaimed it (first chance: the t=8 sweep).
        assert not locks.is_locked(obj)
        assert locks.leases_expired == 1
        assert sweeper.sweeps == 5

    def test_sweep_reports_both_kinds(self, env):
        locks = LockManager(env=env, lease_duration=5.0)
        a, b = make_obj(env, 0), make_obj(env, 1)
        locks.lock(a, MoveBlock(1, a))
        advance(env, 6.0)
        locks.lock(b, MoveBlock(2, b))
        sweeper = LeaseSweeper(env, locks, health=StubHealth(down={2}))
        assert sweeper.sweep() == (1, 1)
        assert locks.locked_objects() == []
