"""Graceful degradation under live-transport conditions (satellite 3).

Two families of guarantees:

1. **False suspicion must be harmless.**  A phi-accrual detector fed
   wall-clock heartbeat intervals with delay spikes (GC pauses, loaded
   event loops) must not declare a live node down — and therefore the
   supervisor must not break a healthy in-flight migration's leases.
2. **True crash recovery must hold the lock invariants** from
   ``tests/test_core_lock_races.py``, now on a wall clock: after
   ``break_crashed`` the dead mover's block is barred forever, its
   late ``PLACE`` is fenced out, and fresh movers proceed.
"""

import asyncio

import pytest

from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.clock import WallClock
from repro.runtime.failure import HeartbeatHistory
from repro.runtime.live.node import LiveObject
from repro.runtime.live.supervisor import (
    NodeSupervisor,
    SupervisorConfig,
    Transfer,
)
from repro.runtime.live.wire import Envelope


class TestPhiUnderDelaySpikes:
    """The detector's verdict on realistic wall-clock interval traces."""

    def feed(self, history, intervals, start=0.0):
        now = start
        history.ensure(1, now)
        for gap in intervals:
            now += gap
            history.record(1, now)
        return now

    def test_steady_heartbeats_keep_phi_low(self):
        history = HeartbeatHistory(interval=0.1, phi_threshold=8.0)
        now = self.feed(history, [0.1] * 50)
        assert history.phi(1, now + 0.1) < 8.0
        assert not history.is_down(1, now + 0.1)

    def test_delay_spike_does_not_trigger_false_suspicion(self):
        """A 3x delay spike (loaded loop, GC pause) stays below phi=8.

        This is the property that keeps the supervisor from aborting a
        healthy in-flight migration: the mover is slow, not dead.
        """
        history = HeartbeatHistory(interval=0.1, phi_threshold=8.0)
        now = self.feed(history, [0.1] * 30)
        # The spike: next heartbeat takes 0.3s instead of 0.1s.
        assert not history.is_down(1, now + 0.3)
        assert history.phi(1, now + 0.3) < 8.0
        # After the spike lands, confidence recovers immediately.
        history.record(1, now + 0.3)
        assert not history.is_down(1, now + 0.4)

    def test_true_silence_is_eventually_suspected(self):
        history = HeartbeatHistory(interval=0.1, phi_threshold=8.0)
        now = self.feed(history, [0.1] * 30)
        assert history.is_down(1, now + 5.0), "real death must be detected"

    def test_jittery_trace_with_spikes_never_crosses_threshold(self):
        history = HeartbeatHistory(interval=0.1, phi_threshold=8.0)
        trace = ([0.08, 0.12, 0.1, 0.11, 0.09] * 6) + [0.25, 0.1, 0.3, 0.1]
        now = self.feed(history, trace)
        for probe in (0.05, 0.15, 0.25):
            assert not history.is_down(1, now + probe), (
                f"false suspicion at +{probe}s over a jittery live trace"
            )


class TestFalseSuspicionSparesHealthyMigration:
    """break_crashed with a healthy verdict must not touch live blocks."""

    class Health:
        def __init__(self, down=()):
            self.down = set(down)

        def is_down(self, node_id):
            return node_id in self.down

    def test_no_suspicion_no_breakage(self):
        locks = LockManager(clock=WallClock(), lease_duration=60.0)
        obj = LiveObject(7)
        block = MoveBlock(client_node=1, target=obj)
        locks.lock(obj, block)
        assert locks.break_crashed(self.Health(down=())) == 0
        assert locks.is_locked(obj), "healthy mover keeps its lock"
        assert not locks.was_broken(block)
        locks.check_invariant()

    def test_suspicion_of_another_node_spares_the_mover(self):
        locks = LockManager(clock=WallClock(), lease_duration=60.0)
        obj = LiveObject(7)
        block = MoveBlock(client_node=1, target=obj)
        locks.lock(obj, block)
        assert locks.break_crashed(self.Health(down={3})) == 0
        assert locks.is_locked(obj)
        locks.check_invariant()


class RecordingTransport:
    """Stub transport capturing replies/notices; no sockets involved."""

    def __init__(self):
        self.replies = []
        self.requests = []

    async def reply(self, envelope, payload=None):
        self.replies.append((envelope, payload))

    async def request(self, dst, kind, payload=None, timeout=None):
        self.requests.append((dst, kind, payload))
        return Envelope("reply", dst, -1, (dst, 1), {"ok": True})


class TestRestartLeaseRecovery:
    """Supervisor crash recovery against the real LockManager."""

    def make_supervisor(self):
        config = SupervisorConfig(num_nodes=3, num_objects=8)
        supervisor = NodeSupervisor(config)
        supervisor.transport = RecordingTransport()
        return supervisor

    def grant(self, supervisor, mover, object_id):
        """Drive _serve_move_request and return the granted payload."""
        envelope = Envelope(
            "move.request", mover, -1, (mover, 1), {"object_id": object_id}
        )
        asyncio.run(supervisor._serve_move_request(envelope))
        _, payload = supervisor.transport.replies[-1]
        return payload

    def test_break_crashed_recovers_lease_and_bars_block(self):
        supervisor = self.make_supervisor()
        grant = self.grant(supervisor, mover=2, object_id=0)
        assert grant["granted"]
        block = supervisor.blocks[grant["block_id"]]
        record = supervisor.records[0]
        assert supervisor.locks.is_locked(record)

        # Node 2 crashes: the monitor's recovery path, minus sockets.
        supervisor.health.down.add(2)
        broken = supervisor.locks.break_crashed(supervisor.health)
        assert broken == 1
        assert not supervisor.locks.is_locked(record)
        assert supervisor.locks.was_broken(block)
        supervisor.locks.check_invariant()

        # The same-tick renewal race from test_core_lock_races: the
        # dead mover's block can never re-acquire.
        with pytest.raises(PolicyError):
            supervisor.locks.lock(record, block)

        # A fresh mover proceeds immediately — degradation, not outage.
        fresh = self.grant(supervisor, mover=3, object_id=0)
        assert fresh["granted"]

    def test_zombie_place_is_fenced_after_break(self):
        """A crash-suspected mover's late PLACE must not commit."""
        supervisor = self.make_supervisor()
        grant = self.grant(supervisor, mover=2, object_id=0)
        transfer_id = grant["transfer_id"]
        assert transfer_id is not None
        source = grant["source"]

        supervisor.health.down.add(2)
        supervisor.locks.break_crashed(supervisor.health)

        # The zombie's PLACE arrives after the break.
        envelope = Envelope(
            "place", 2, -1, (2, 99), {"transfer_id": transfer_id}
        )
        asyncio.run(supervisor._serve_place(envelope))
        _, payload = supervisor.transport.replies[-1]
        assert payload == {"ok": False}, "fence must reject the zombie"
        assert supervisor.placement[0] == source, "placement unmoved"

    def test_crashed_destination_rolls_back_pending_transfer(self):
        supervisor = self.make_supervisor()
        grant = self.grant(supervisor, mover=2, object_id=0)
        transfer = supervisor.transfers[grant["transfer_id"]]
        assert transfer.state == "pending"

        # Mirror _restart_inner's transfer settlement for a dead dst.
        supervisor.health.down.add(2)
        supervisor.locks.break_crashed(supervisor.health)
        for t in supervisor.transfers.values():
            if t.state == "pending" and t.dst == 2:
                t.state = "rolled_back"

        assert transfer.state == "rolled_back"
        assert supervisor.placement[0] == transfer.src
        supervisor.locks.check_invariant()


class TestTransferFence:
    def test_place_requires_pending_state_and_matching_dst(self):
        supervisor = TestRestartLeaseRecovery().make_supervisor()
        # Object 2 is seeded at node 3 (round-robin), so mover 2's
        # grant creates a real transfer.
        grant = TestRestartLeaseRecovery().grant(
            supervisor, mover=2, object_id=2
        )
        transfer_id = grant["transfer_id"]
        assert transfer_id is not None

        # Wrong claimant: node 3 cannot commit node 2's transfer.
        envelope = Envelope(
            "place", 3, -1, (3, 1), {"transfer_id": transfer_id}
        )
        asyncio.run(supervisor._serve_place(envelope))
        _, payload = supervisor.transport.replies[-1]
        assert payload == {"ok": False}

        # Rightful claimant commits exactly once.
        envelope = Envelope(
            "place", 2, -1, (2, 2), {"transfer_id": transfer_id}
        )
        asyncio.run(supervisor._serve_place(envelope))
        _, payload = supervisor.transport.replies[-1]
        assert payload == {"ok": True}
        assert supervisor.placement[2] == 2

        # Replayed commit after a rollback attempt: both fenced.
        envelope = Envelope(
            "rollback", 2, -1, (2, 3), {"transfer_id": transfer_id}
        )
        asyncio.run(supervisor._serve_rollback(envelope))
        _, payload = supervisor.transport.replies[-1]
        assert payload == {"ok": False}, "rollback after commit is void"
