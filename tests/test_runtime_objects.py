"""Unit tests for DistributedObject's mobility state machine."""

import pytest

from repro.errors import MigrationInProgressError
from repro.runtime.objects import DistributedObject, MobilityState, ObjectKind


@pytest.fixture
def obj(env):
    return DistributedObject(env, object_id=1, node_id=0)


class TestConstruction:
    def test_defaults(self, obj):
        assert obj.kind is ObjectKind.SERVER
        assert not obj.fixed
        assert obj.node_id == 0
        assert obj.state is MobilityState.RESIDENT
        assert not obj.is_locked

    def test_client_naming(self, env):
        c = DistributedObject(
            env, object_id=2, node_id=1, kind=ObjectKind.CLIENT, fixed=True
        )
        assert c.name == "client-2"
        assert c.fixed

    def test_size_must_be_positive(self, env):
        with pytest.raises(ValueError):
            DistributedObject(env, object_id=3, node_id=0, size=0)

    def test_equality_by_id(self, env, obj):
        same = DistributedObject(env, object_id=1, node_id=5)
        other = DistributedObject(env, object_id=2, node_id=0)
        assert obj == same
        assert obj != other
        assert hash(obj) == hash(same)


class TestTransit:
    def test_begin_and_install(self, env, obj):
        obj.begin_transit()
        assert obj.in_transit
        obj.install(2)
        assert not obj.in_transit
        assert obj.node_id == 2
        assert obj.migration_count == 1

    def test_double_begin_rejected(self, obj):
        obj.begin_transit()
        with pytest.raises(MigrationInProgressError):
            obj.begin_transit()

    def test_install_without_transit_rejected(self, obj):
        with pytest.raises(MigrationInProgressError):
            obj.install(1)

    def test_install_wakes_waiters(self, env, obj):
        woken = []

        def waiter(env):
            node = yield obj.reinstalled.wait()
            woken.append((env.now, node))

        def mover(env):
            obj.begin_transit()
            yield env.timeout(6)
            obj.install(2)

        env.process(waiter(env))
        env.process(mover(env))
        env.run()
        assert woken == [(6, 2)]

    def test_transit_time_accumulates(self, env, obj):
        def mover(env):
            obj.begin_transit()
            yield env.timeout(4)
            obj.install(1)
            obj.begin_transit()
            yield env.timeout(2)
            obj.install(0)

        env.process(mover(env))
        env.run()
        assert obj.transit_time == pytest.approx(6.0)

    def test_is_resident_on(self, obj):
        assert obj.is_resident_on(0)
        assert not obj.is_resident_on(1)
        obj.begin_transit()
        assert not obj.is_resident_on(0)

    def test_repr_shows_transit(self, obj):
        assert "@0" in repr(obj)
        obj.begin_transit()
        assert "transit" in repr(obj)
