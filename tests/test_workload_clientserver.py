"""Integration tests for the basic client–server workload (Fig 6)."""

import pytest

from repro.sim.trace import Tracer
from repro.workload.clientserver import ClientServerWorkload, run_cell
from repro.workload.params import SimulationParameters


class TestConstruction:
    def test_placement_matches_params(self):
        params = SimulationParameters(nodes=3, clients=5, servers_layer1=3)
        w = ClientServerWorkload(params)
        assert [c.node_id for c in w.clients] == [0, 1, 2, 0, 1]
        assert [s.node_id for s in w.servers] == [0, 1, 2]
        assert all(c.fixed for c in w.clients)
        assert not any(s.fixed for s in w.servers)

    def test_policy_built_from_name(self):
        w = ClientServerWorkload(SimulationParameters(policy="migration"))
        assert w.policy.name == "migration"

    def test_non_default_locator_wired(self):
        w = ClientServerWorkload(
            SimulationParameters(locator="nameserver")
        )
        assert w.system.invocations.locator.name == "nameserver"

    def test_start_idempotent(self):
        w = ClientServerWorkload(SimulationParameters())
        w.start()
        events_before = len(w.system.env)
        w.start()
        assert len(w.system.env) == events_before


class TestExecution:
    def test_sedentary_anchor(self, tiny_stopping):
        """The paper's Fig 8 anchor: D=C=S1=3 sedentary => mean 4/3."""
        result = run_cell(
            SimulationParameters(policy="sedentary", seed=3),
            stopping=tiny_stopping,
        )
        assert result.mean_communication_time_per_call == pytest.approx(
            4.0 / 3.0, rel=0.1
        )
        assert result.mean_migration_time_per_call == 0.0

    def test_metric_decomposition_adds_up(self, tiny_stopping):
        result = run_cell(
            SimulationParameters(policy="placement", seed=1),
            stopping=tiny_stopping,
        )
        assert result.mean_communication_time_per_call == pytest.approx(
            result.mean_call_duration + result.mean_migration_time_per_call
        )

    def test_same_seed_reproducible(self, tiny_stopping):
        params = SimulationParameters(policy="migration", seed=9)
        a = run_cell(params, stopping=tiny_stopping)
        b = run_cell(params, stopping=tiny_stopping)
        assert (
            a.mean_communication_time_per_call
            == b.mean_communication_time_per_call
        )
        assert a.raw["migrations"] == b.raw["migrations"]

    def test_different_seeds_differ(self, tiny_stopping):
        a = run_cell(
            SimulationParameters(policy="migration", seed=1),
            stopping=tiny_stopping,
        )
        b = run_cell(
            SimulationParameters(policy="migration", seed=2),
            stopping=tiny_stopping,
        )
        assert (
            a.mean_communication_time_per_call
            != b.mean_communication_time_per_call
        )

    def test_raw_summary_populated(self, tiny_stopping):
        result = run_cell(
            SimulationParameters(policy="placement", seed=0),
            stopping=tiny_stopping,
        )
        assert result.raw["metrics"]["blocks"] > 0
        assert result.raw["policy"]["policy"] == "placement"
        assert result.raw["network"]["remote_messages"] > 0

    def test_registry_consistent_after_run(self, tiny_stopping):
        params = SimulationParameters(policy="migration", seed=4)
        w = ClientServerWorkload(params, stopping=tiny_stopping)
        w.run()
        # Objects may be mid-flight when the run stops; consistency
        # still must hold for the registry's residency sets.
        w.system.registry.check_consistency()

    def test_sedentary_sends_no_migrations(self, tiny_stopping):
        result = run_cell(
            SimulationParameters(policy="sedentary", seed=0),
            stopping=tiny_stopping,
        )
        assert result.raw["migrations"] == 0

    def test_trace_captures_moves(self, tiny_stopping):
        tracer = Tracer(kinds={"move.granted", "move.rejected"})
        params = SimulationParameters(policy="placement", seed=0, clients=6)
        w = ClientServerWorkload(params, stopping=tiny_stopping, tracer=tracer)
        w.run()
        assert tracer.count("move.granted") > 0
        assert tracer.count("move.rejected") > 0
