"""Property-based tests for the attachment closure algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment

N_OBJECTS = 10

#: Random edge lists: (src, dst, context) with src != dst.
edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
        st.integers(min_value=1, max_value=3),
    ).filter(lambda e: e[0] != e[1]),
    max_size=40,
)


def build(mode, edge_list):
    env = Environment()
    objs = [
        DistributedObject(env, object_id=i, node_id=0) for i in range(N_OBJECTS)
    ]
    mgr = AttachmentManager(mode)
    for src, dst, ctx in edge_list:
        mgr.attach(objs[src], objs[dst], context=ctx)
    return mgr, objs


@given(edges)
def test_closure_contains_self(edge_list):
    mgr, objs = build(AttachmentMode.UNRESTRICTED, edge_list)
    for obj in objs:
        assert obj in mgr.closure(obj)


@given(edges)
def test_closure_is_symmetric_membership(edge_list):
    """b in closure(a) iff a in closure(b)."""
    mgr, objs = build(AttachmentMode.UNRESTRICTED, edge_list)
    for a in objs:
        for b in mgr.closure(a):
            assert a in mgr.closure(b)


@given(edges)
def test_closure_is_idempotent(edge_list):
    """closure(x) is identical for every member x of the closure."""
    mgr, objs = build(AttachmentMode.UNRESTRICTED, edge_list)
    for obj in objs:
        members = mgr.closure(obj)
        for member in members:
            assert mgr.closure(member) == members


@given(edges, st.integers(min_value=1, max_value=3))
def test_scoped_closure_subset_of_unrestricted(edge_list, context):
    mgr, objs = build(AttachmentMode.A_TRANSITIVE, edge_list)
    for obj in objs:
        scoped = set(o.object_id for o in mgr.closure(obj, context=context))
        full = set(o.object_id for o in mgr.closure(obj))
        assert scoped <= full


@given(edges)
def test_components_partition_attached_objects(edge_list):
    mgr, objs = build(AttachmentMode.UNRESTRICTED, edge_list)
    comps = mgr.components()
    seen = [o.object_id for comp in comps for o in comp]
    assert len(seen) == len(set(seen))  # disjoint
    for comp in comps:
        assert len(comp) >= 2  # singletons are not components


@given(edges)
def test_exclusive_mode_bounds_out_degree(edge_list):
    env = Environment()
    objs = [
        DistributedObject(env, object_id=i, node_id=0) for i in range(N_OBJECTS)
    ]
    mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
    accepted = {}  # src -> set of distinct partners actually attached
    for src, dst, ctx in edge_list:
        if mgr.attach(objs[src], objs[dst], context=ctx):
            accepted.setdefault(src, set()).add(dst)
    # Every object got attached *to* at most one distinct partner.
    for src, partners in accepted.items():
        assert len(partners) <= 1


@given(edges)
def test_exclusive_closures_never_larger_than_unrestricted(edge_list):
    exclusive, objs_e = build(AttachmentMode.EXCLUSIVE, edge_list)
    unrestricted, objs_u = build(AttachmentMode.UNRESTRICTED, edge_list)
    for i in range(N_OBJECTS):
        ce = {o.object_id for o in exclusive.closure(objs_e[i])}
        cu = {o.object_id for o in unrestricted.closure(objs_u[i])}
        assert ce <= cu


@given(edges)
def test_detach_all_isolates(edge_list):
    mgr, objs = build(AttachmentMode.UNRESTRICTED, edge_list)
    victim = objs[0]
    mgr.detach_all(victim)
    assert mgr.closure(victim) == [victim]
    for obj in objs[1:]:
        assert victim not in mgr.closure(obj)
