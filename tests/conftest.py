"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stopping import StoppingConfig
from repro.sim.trace import Tracer


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams (seed 12345)."""
    return RandomStreams(12345)


@pytest.fixture
def tracer() -> Tracer:
    """A recording tracer."""
    return Tracer()


@pytest.fixture
def tiny_stopping() -> StoppingConfig:
    """Very loose stopping rule so integration tests finish quickly."""
    return StoppingConfig(
        relative_precision=0.2,
        confidence=0.9,
        batch_size=50,
        warmup=50,
        min_batches=3,
        max_observations=4_000,
    )
