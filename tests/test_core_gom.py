"""Unit tests for GOM-style operation declarations (§2.3, Fig 1)."""

import pytest

from repro.core.gom import OperationDeclaration
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.placement import TransientPlacement
from repro.errors import ConfigurationError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )


def run(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


def make_assign(system, policy, tool):
    """The paper's Fig 1 operation: `assign: visit job, move schedule`."""
    return OperationDeclaration(
        system,
        policy,
        owner=tool,
        name="assign",
        visit=("job",),
        move=("schedule",),
    )


class TestDeclaration:
    def test_conflicting_modes_rejected(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        with pytest.raises(ConfigurationError, match="both visit and move"):
            OperationDeclaration(
                system, policy, tool, visit=("x",), move=("x",)
            )

    def test_undeclared_parameter_rejected(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        op = make_assign(system, policy, tool)
        job = system.create_server(node=1)
        with pytest.raises(ConfigurationError, match="undeclared"):
            op.call(2, jobb=job)

    def test_repr(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        op = make_assign(system, policy, tool)
        assert "assign" in repr(op)
        assert "job" in repr(op)


class TestCallSemantics:
    def test_move_param_stays_visit_param_returns(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0, name="tool")
        job = system.create_server(node=1, name="job")
        schedule = system.create_server(node=2, name="schedule")
        op = make_assign(system, policy, tool)

        outcome = run(system, op.call(3, job=job, schedule=schedule))

        assert outcome.parameters_granted == 2
        # Call-by-move: the schedule stays with the tool.
        assert schedule.node_id == tool.node_id == 0
        # Call-by-visit: the job went over and came back.
        assert job.node_id == 1
        assert job.migration_count == 2
        assert op.call_count == 1

    def test_elapsed_covers_transfers_and_return(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        job = system.create_server(node=1)
        op = OperationDeclaration(
            system, policy, tool, name="op", visit=("job",)
        )
        outcome = run(system, op.call(0, job=job))
        # Transfer in: request 1 + M 6 = 7; call: local (0); return: 6.
        assert outcome.elapsed == pytest.approx(13.0)

    def test_omitted_optional_parameter(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        op = make_assign(system, policy, tool)
        outcome = run(system, op.call(1))
        assert outcome.parameter_blocks == {}
        assert outcome.invocation.duration == pytest.approx(2.0)

    def test_colocated_parameter_not_transferred(self, system):
        policy = ConventionalMigration(system)
        tool = system.create_server(node=0)
        job = system.create_server(node=0)
        op = make_assign(system, policy, tool)
        run(system, op.call(1, job=job))
        assert job.migration_count == 0


class TestConflicts:
    def test_placement_protects_shared_parameter(self, system):
        """Two tools on different nodes fight over one shared schedule;
        under placement the second operation's parameter stays put."""
        policy = TransientPlacement(system)
        tool_a = system.create_server(node=0, name="tool-a")
        tool_b = system.create_server(node=1, name="tool-b")
        schedule = system.create_server(node=2, name="schedule")

        op_a = OperationDeclaration(
            system, policy, tool_a, name="a", move=("schedule",)
        )
        op_b = OperationDeclaration(
            system, policy, tool_b, name="b", move=("schedule",)
        )

        results = {}

        def caller(env, op, tag, hold):
            outcome = yield from op.call(3, schedule=schedule)
            results[tag] = outcome
            if hold:
                yield env.timeout(hold)

        def run_a(env):
            yield from caller(env, op_a, "a", hold=0)

        def run_b(env):
            yield env.timeout(1.0)  # b arrives while a's move is active
            yield from caller(env, op_b, "b", hold=0)

        system.env.process(run_a(system.env))
        system.env.process(run_b(system.env))
        system.env.run()

        a_block = results["a"].parameter_blocks["schedule"]
        b_block = results["b"].parameter_blocks["schedule"]
        assert a_block.granted
        # a's end released the lock before b's request only if b's
        # request arrived first; with the 1-time-unit offset it arrives
        # during a's transfer, so b is rejected.
        assert not b_block.granted
        assert schedule.node_id == 0  # stayed with tool-a

    def test_conventional_steals_shared_parameter(self, system):
        policy = ConventionalMigration(system)
        tool_a = system.create_server(node=0)
        tool_b = system.create_server(node=1)
        schedule = system.create_server(node=2)
        op_a = OperationDeclaration(
            system, policy, tool_a, name="a", move=("schedule",)
        )
        op_b = OperationDeclaration(
            system, policy, tool_b, name="b", move=("schedule",)
        )

        def run_a(env):
            yield from op_a.call(3, schedule=schedule)

        def run_b(env):
            yield env.timeout(1.0)
            yield from op_b.call(3, schedule=schedule)

        system.env.process(run_a(system.env))
        system.env.process(run_b(system.env))
        system.env.run()
        assert schedule.node_id == 1  # stolen by the later operation
        assert schedule.migration_count == 2
