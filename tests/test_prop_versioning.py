"""Property tests for versioned-migration safety on quiescent graphs.

Random graph shapes (placement, attachments, alliances) and random
target version assignments must preserve the protocol's two hash
promises, using the placement-pinning *per-node* content hashes (on a
quiescent graph, bit-identical node hashes mean nothing changed at
all):

* *rollback restores* — plan → apply (every stage flips) → full
  rollback leaves every node content hash bit-identical to before;
* *commit lands* — plan → apply → plan the inverse → apply also
  restores every node content hash: the hashes are a function of graph
  state alone, not of deployment history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alliance import AllianceManager
from repro.core.locking import LockManager
from repro.runtime.system import DistributedSystem
from repro.versioning.deployer import MigrationDeployer
from repro.versioning.diff import snapshot_graph
from repro.versioning.planner import MigrationPlanner, VersionConfig

VERSIONS = ("v1", "v2", "v3")


@st.composite
def graph_case(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    n_objects = draw(st.integers(min_value=0, max_value=8))
    placement = [
        draw(st.integers(min_value=0, max_value=n_nodes - 1))
        for _ in range(n_objects)
    ]
    if n_objects >= 2:
        pairs = st.tuples(
            st.integers(min_value=0, max_value=n_objects - 1),
            st.integers(min_value=0, max_value=n_objects - 1),
        )
        edges = draw(st.lists(pairs, max_size=6))
        allied = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_objects - 1),
                unique=True,
                max_size=4,
            )
        )
    else:
        edges, allied = [], []
    targets = (
        draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=n_objects - 1),
                st.sampled_from(VERSIONS),
                max_size=n_objects,
            )
        )
        if n_objects
        else {}
    )
    batch_size = draw(st.integers(min_value=1, max_value=4))
    return n_nodes, placement, edges, allied, targets, batch_size


def build(case):
    n_nodes, placement, edges, allied, targets, batch_size = case
    system = DistributedSystem(nodes=n_nodes, seed=0)
    objs = [
        system.create_server(node, name=f"s{i}")
        for i, node in enumerate(placement)
    ]
    alliances = AllianceManager()
    attachments = alliances.attachments
    for a, b in edges:
        if a != b:
            attachments.attach(objs[a], objs[b])
    ring = alliances.create("prop-ring")
    for i in allied:
        ring.admit(objs[i])
    target = VersionConfig.make(
        "prop-target",
        objects={objs[i].object_id: v for i, v in targets.items()},
    )
    locks = LockManager(env=system.env)
    return system, attachments, alliances, target, locks, batch_size


def run_to_completion(gen):
    """Drive a deploy generator on a quiescent graph.

    With ``upgrade_duration=0`` and uncontended locks the generator
    never needs simulated time; stepping it to ``StopIteration`` yields
    the :class:`DeploymentResult`.
    """
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def make_deployer(system, plan, locks, attachments, alliances, gates=()):
    return MigrationDeployer(
        system,
        plan,
        locks,
        gates=gates,
        attachments=attachments,
        alliances=alliances,
        upgrade_duration=0.0,
        max_stage_retries=0,
    )


@settings(max_examples=60, deadline=None)
@given(graph_case())
def test_apply_then_rollback_restores_node_hashes(case):
    system, attachments, alliances, target, locks, batch_size = build(case)
    before = snapshot_graph(system, attachments, alliances)

    planner = MigrationPlanner(system, attachments, alliances)
    plan = planner.plan(target, batch_size=batch_size)
    last = plan.stages[-1].index if plan.stages else -1

    # Gate that passes until the last stage has flipped, then fails:
    # every stage applies, then the whole deployment rolls back.
    deployer = make_deployer(
        system, plan, locks, attachments, alliances,
        gates=(
            (
                "fail-at-end",
                lambda: (
                    deployer.active_stage is None
                    or deployer.active_stage[0] != last
                ),
            ),
        ),
    )
    result = run_to_completion(deployer.deploy())

    assert result.status in ("rolled-back", "empty")
    if result.status == "rolled-back":
        assert result.full_rollbacks == 1
        # Every stage before the last committed (the last stage's flips
        # landed too, but its gate failure kept it out of `upgraded`),
        # so real state really was applied before being undone.
        assert result.upgraded == len(plan.changed_ids) - len(
            plan.stages[-1].object_ids
        )

    after = snapshot_graph(system, attachments, alliances)
    assert after.node_hashes == before.node_hashes
    assert after.placement_digest == before.placement_digest
    assert after.root_digest == before.root_digest
    assert before.diff(after) == []
    assert locks.locked_objects() == []


@settings(max_examples=60, deadline=None)
@given(graph_case())
def test_inverse_deploy_restores_node_hashes(case):
    system, attachments, alliances, target, locks, batch_size = build(case)
    before = snapshot_graph(system, attachments, alliances)
    planner = MigrationPlanner(system, attachments, alliances)

    plan = planner.plan(target, batch_size=batch_size)
    forward = run_to_completion(
        make_deployer(system, plan, locks, attachments, alliances).deploy()
    )
    assert forward.status in ("committed", "empty")
    assert forward.post_digest == plan.target_digest
    # Mid-state sanity: the graph matches the target config now.
    for oid in plan.changed_ids:
        assert system.registry.get(oid).version == plan.new_versions[oid]

    back = planner.plan(
        VersionConfig.make("prop-restore"), batch_size=batch_size
    )
    backward = run_to_completion(
        make_deployer(system, back, locks, attachments, alliances).deploy()
    )
    assert backward.status in ("committed", "empty")

    after = snapshot_graph(system, attachments, alliances)
    assert after.node_hashes == before.node_hashes
    assert after.root_digest == before.root_digest
