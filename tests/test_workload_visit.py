"""Tests for call-by-visit block style and guarded policies in workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import ClientServerWorkload, run_cell
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.25,
    confidence=0.9,
    batch_size=50,
    warmup=50,
    min_batches=3,
    max_observations=3_000,
)


class TestVisitStyle:
    def test_block_style_validated(self):
        with pytest.raises(ConfigurationError, match="block_style"):
            SimulationParameters(block_style="teleport").validate()
        SimulationParameters(block_style="visit").validate()

    def test_visit_single_client_returns_object_home(self):
        """With one client and visit semantics every granted block is
        followed by a return transfer: migrations come in pairs."""
        params = SimulationParameters(
            policy="migration",
            clients=1,
            nodes=3,
            block_style="visit",
            seed=0,
        )
        workload = ClientServerWorkload(params, stopping=TINY)
        result = workload.run()
        migrations = workload.system.migrations.migration_count
        granted = workload.policy.moves_granted
        # Outbound + return per granted remote move; moves that found
        # the object local transfer nothing.  Allow one in-flight pair.
        assert migrations <= 2 * granted + 2
        # Servers end up (nearly) where they started most of the time:
        # after the run most servers should sit at their home nodes.
        home_count = sum(
            1
            for j, server in enumerate(workload.servers)
            if server.node_id == params.server_node(j)
        )
        assert home_count >= len(workload.servers) - 1

    def test_visit_costs_more_than_move(self):
        common = dict(
            policy="migration", clients=6, nodes=27, servers_layer1=3,
            mean_interblock_time=30.0, seed=1,
        )
        move = run_cell(
            SimulationParameters(block_style="move", **common),
            stopping=TINY,
        )
        visit = run_cell(
            SimulationParameters(block_style="visit", **common),
            stopping=TINY,
        )
        assert (
            visit.mean_migration_time_per_call
            > move.mean_migration_time_per_call
        )

    def test_visit_respects_placement_locks(self):
        """A rejected visit block must not trigger a return transfer."""
        params = SimulationParameters(
            policy="placement",
            clients=6,
            nodes=3,
            block_style="visit",
            mean_interblock_time=5.0,
            seed=2,
        )
        workload = ClientServerWorkload(params, stopping=TINY)
        workload.run()
        stats = workload.policy.stats()
        migrations = workload.system.migrations.migration_count
        # Transfers stem only from granted moves (out + return).
        assert migrations <= 2 * stats["moves_granted"] + 2


class TestGuardedPolicyInWorkload:
    def test_guarded_policy_via_params(self):
        params = SimulationParameters(
            policy="guarded:migration", clients=8, nodes=3, seed=3,
            mean_interblock_time=5.0,
        )
        workload = ClientServerWorkload(params, stopping=TINY)
        result = workload.run()
        stats = workload.policy.stats()
        assert stats["policy"] == "guarded(migration)"
        # Under this hot configuration the guard must have fired.
        assert stats["guard_rejections"] > 0
        assert result.mean_communication_time_per_call > 0

    def test_guarded_caps_migration_rate(self):
        common = dict(
            clients=10, nodes=3, seed=4, mean_interblock_time=5.0
        )
        plain = ClientServerWorkload(
            SimulationParameters(policy="migration", **common),
            stopping=TINY,
        )
        plain_result = plain.run()
        guarded = ClientServerWorkload(
            SimulationParameters(policy="guarded:migration", **common),
            stopping=TINY,
        )
        guarded_result = guarded.run()
        plain_rate = (
            plain.system.migrations.migration_count
            / plain_result.simulated_time
        )
        guarded_rate = (
            guarded.system.migrations.migration_count
            / guarded_result.simulated_time
        )
        assert guarded_rate < plain_rate
