"""Unit tests for break-even/curve analysis."""

import pytest

from repro.analysis.breakeven import break_even, crossings, growth_rate, is_sublinear
from repro.analysis.series import Curve, spread


class TestCrossings:
    def test_single_crossing_interpolated(self):
        x = [0, 1, 2]
        a = [0.0, 1.0, 2.0]
        b = [1.0, 1.0, 1.0]
        assert crossings(x, a, b) == pytest.approx([1.0])

    def test_crossing_inside_interval(self):
        x = [0, 2]
        a = [0.0, 4.0]
        b = [1.0, 1.0]
        assert crossings(x, a, b) == pytest.approx([0.5])

    def test_no_crossing(self):
        assert crossings([0, 1], [0, 0], [1, 1]) == []

    def test_touch_counts_once(self):
        x = [0, 1, 2]
        a = [0.0, 1.0, 0.0]
        b = [1.0, 1.0, 1.0]
        assert crossings(x, a, b) == pytest.approx([1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossings([0, 1], [0], [1, 1])

    def test_non_increasing_x_rejected(self):
        with pytest.raises(ValueError):
            crossings([1, 0], [0, 1], [1, 0])


class TestBreakEven:
    def test_fig12_style_break_even(self):
        x = [1, 5, 10, 20]
        migration = [0.5, 1.5, 3.0, 6.0]
        sedentary = [1.9, 1.9, 1.9, 1.9]
        be = break_even(x, migration, sedentary)
        assert be == pytest.approx(6.6, rel=0.05)

    def test_policy_never_worse(self):
        x = [1, 5, 10]
        assert break_even(x, [0.5, 1.0, 1.5], [2.0, 2.0, 2.0]) is None


class TestGrowth:
    def test_growth_rate_of_line(self):
        slope, intercept = growth_rate([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_sublinear_detection(self):
        x = [1, 2, 4, 8, 16]
        sub = [1, 1.7, 2.6, 3.4, 4.0]  # decreasing slope
        linear = [1, 2, 4, 8, 16]
        assert is_sublinear(x, sub)
        assert not is_sublinear(x, linear)

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            is_sublinear([1, 2], [1, 2])


class TestCurve:
    def test_from_points_and_interp(self):
        c = Curve.from_points("a", [(0, 0.0), (10, 5.0)])
        assert c.value_at(4) == pytest.approx(2.0)
        assert c.min() == 0.0
        assert c.max() == 5.0

    def test_dominates(self):
        x = (0, 1, 2)
        low = Curve("low", x, (1, 1, 1))
        high = Curve("high", x, (2, 2, 2))
        assert low.dominates(high)
        assert not high.dominates(low)
        assert high.dominates(low, slack=1.5)

    def test_dominates_requires_same_grid(self):
        a = Curve("a", (0, 1), (0, 0))
        b = Curve("b", (0, 2), (0, 0))
        with pytest.raises(ValueError):
            a.dominates(b)

    def test_roughly_flat(self):
        assert Curve("f", (0, 1, 2), (1.0, 1.05, 0.97)).roughly_flat()
        assert not Curve("s", (0, 1, 2), (1.0, 2.0, 3.0)).roughly_flat()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Curve("bad", (0, 1), (0.0,))


class TestSpread:
    def test_spread_of_identical_curves_is_zero(self):
        x = (0, 1)
        assert spread([Curve("a", x, (1, 1)), Curve("b", x, (1, 1))]) == 0.0

    def test_spread_max_gap(self):
        x = (0, 1)
        curves = [
            Curve("a", x, (1.0, 1.0)),
            Curve("b", x, (1.5, 3.0)),
        ]
        assert spread(curves) == pytest.approx(2.0)

    def test_single_curve(self):
        assert spread([Curve("a", (0,), (1.0,))]) == 0.0
