"""Every exception in the taxonomy must round-trip through pickle.

The parallel experiment executor propagates worker failures by pickling
them back to the parent process; an exception class whose constructor
signature diverges from its ``args`` silently turns into a
``PicklingError`` (or worse, a different exception) at the boundary.
The whole taxonomy is collected by introspection so new exception
classes are covered the day they are added.
"""

import inspect
import pickle
import subprocess
import sys

import pytest

import repro.errors as errors_module
from repro.errors import (
    ChecksumMismatchError,
    ConnectionLostError,
    DeploymentError,
    DrainTimeoutError,
    FrameTooLargeError,
    InvariantViolationError,
    ReproError,
    StageAbortedError,
    TransportError,
    WorkerCrashedError,
)


def exception_classes():
    """Every exception class defined in repro.errors."""
    return sorted(
        (
            cls
            for _, cls in inspect.getmembers(errors_module, inspect.isclass)
            if issubclass(cls, BaseException)
            and cls.__module__ == errors_module.__name__
        ),
        key=lambda cls: cls.__name__,
    )


def sample_instance(cls):
    """Build a representative instance of one exception class."""
    if cls is InvariantViolationError:
        return cls("invariant 'x' violated at t=3.0", ("rec-a", "rec-b"))
    if cls is errors_module.StopSimulation:
        return cls(42)
    if cls is errors_module.Interrupt:
        return cls("preempted")
    if cls is StageAbortedError:
        return cls("stage failed", stage=2, reason="coordinator-crash")
    if cls is ChecksumMismatchError:
        return cls(
            "hash drift", object_id=7, expected="a" * 64, actual="b" * 64
        )
    if cls is ConnectionLostError:
        return cls("peer vanished mid-frame", peer=3)
    if cls is FrameTooLargeError:
        return cls("oversized frame", size=1 << 30, limit=1 << 26)
    if cls is WorkerCrashedError:
        return cls("worker died", node=2, exitcode=-9)
    if cls is DrainTimeoutError:
        return cls("drain overran", timeout=5.0, pending=(1, 4))
    if cls is errors_module.WalCorruptionError:
        return cls(
            "checksum mismatch", path="/tmp/arbitration.wal", line=17
        )
    return cls(f"sample {cls.__name__} message")


class TestTaxonomyIsCovered:
    def test_collection_found_the_taxonomy(self):
        names = [cls.__name__ for cls in exception_classes()]
        # Spot-check the corners: base, kernel, fault and monitor errors.
        for expected in (
            "ReproError",
            "SimulationError",
            "MessageLostError",
            "NodeCrashedError",
            "InvariantViolationError",
            "ConfigurationError",
        ):
            assert expected in names
        assert len(names) >= 15


@pytest.mark.parametrize(
    "cls", exception_classes(), ids=lambda cls: cls.__name__
)
class TestPickleRoundTrip:
    def test_round_trips_unchanged(self, cls):
        original = sample_instance(cls)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert clone.args == original.args
        assert str(clone) == str(original)

    def test_survives_raise_across_boundary(self, cls):
        # The executor's actual pattern: raise, catch, pickle, re-raise.
        original = sample_instance(cls)
        try:
            raise original
        except BaseException as exc:
            clone = pickle.loads(pickle.dumps(exc))
        with pytest.raises(cls):
            raise clone


class TestInvariantViolationPayload:
    def test_message_and_trace_survive(self):
        exc = InvariantViolationError("boom", ("line1", "line2"))
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.message == "boom"
        assert clone.trace == ("line1", "line2")
        assert "line2" in str(clone)

    def test_trace_is_always_a_tuple(self):
        exc = InvariantViolationError("boom", ["a", "b"])
        assert exc.trace == ("a", "b")
        assert InvariantViolationError("x").trace == ()

    def test_is_a_repro_error(self):
        assert issubclass(InvariantViolationError, ReproError)


class TestCrossProcessRoundTrip:
    """The whole taxonomy survives a *real* process boundary.

    The live supervisor ships exceptions between OS processes the same
    way the parallel executor does between pool workers: pickle on one
    side, unpickle on the other.  One subprocess re-pickles the entire
    taxonomy so the boundary is exercised for every class at once.
    """

    _ECHO = (
        "import pickle, sys\n"
        "blob = sys.stdin.buffer.read()\n"
        "instances = pickle.loads(blob)\n"
        "sys.stdout.buffer.write(pickle.dumps(instances))\n"
    )

    def test_taxonomy_round_trips_through_a_subprocess(self):
        originals = [sample_instance(cls) for cls in exception_classes()]
        proc = subprocess.run(
            [sys.executable, "-c", self._ECHO],
            input=pickle.dumps(originals),
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        clones = pickle.loads(proc.stdout)
        assert len(clones) == len(originals)
        for original, clone in zip(originals, clones):
            assert type(clone) is type(original)
            assert clone.args == original.args
            assert str(clone) == str(original)


class TestLiveErrorPayloads:
    def test_connection_lost_payload_survives(self):
        exc = ConnectionLostError("send failed after 4 attempts", peer=7)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.peer == 7
        assert "peer=7" in str(clone)

    def test_frame_too_large_payload_survives(self):
        exc = FrameTooLargeError("refusing frame", size=100, limit=64)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.size == 100
        assert clone.limit == 64
        assert "100" in str(clone) and "64" in str(clone)

    def test_worker_crashed_payload_survives(self):
        exc = WorkerCrashedError("sigkilled", node=1, exitcode=-9)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.node == 1
        assert clone.exitcode == -9
        assert "exitcode=-9" in str(clone)

    def test_drain_timeout_payload_survives(self):
        exc = DrainTimeoutError("stragglers", timeout=2.5, pending=[3, 5])
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.timeout == 2.5
        assert clone.pending == (3, 5)
        assert "pending: 3, 5" in str(clone)

    def test_wal_corruption_payload_survives(self):
        exc = errors_module.WalCorruptionError(
            "non-monotonic seq 3 after 5", path="/run/arb.wal", line=9
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.message == "non-monotonic seq 3 after 5"
        assert clone.path == "/run/arb.wal"
        assert clone.line == 9
        assert issubclass(
            errors_module.WalCorruptionError, errors_module.SupervisionError
        )

    def test_live_errors_are_fault_errors(self):
        for cls in (
            TransportError,
            ConnectionLostError,
            FrameTooLargeError,
            errors_module.TransportClosedError,
            errors_module.SupervisionError,
            WorkerCrashedError,
            DrainTimeoutError,
        ):
            assert issubclass(cls, errors_module.FaultError)
        assert issubclass(ConnectionLostError, TransportError)
        assert issubclass(WorkerCrashedError, errors_module.SupervisionError)
        assert issubclass(DrainTimeoutError, errors_module.SupervisionError)


class TestDeploymentErrorPayloads:
    def test_stage_aborted_payload_survives(self):
        exc = StageAbortedError("boom", stage=3, reason="invariant-violation")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.message == "boom"
        assert clone.stage == 3
        assert clone.reason == "invariant-violation"
        assert "stage=3" in str(clone)
        assert "invariant-violation" in str(clone)

    def test_stage_aborted_defaults(self):
        exc = StageAbortedError("bare")
        assert exc.stage == -1
        assert exc.reason == ""

    def test_checksum_mismatch_payload_survives(self):
        exc = ChecksumMismatchError(
            "object 9 drifted", object_id=9, expected="e" * 64, actual="f" * 64
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.object_id == 9
        assert clone.expected == "e" * 64
        assert clone.actual == "f" * 64
        # __str__ shows truncated hashes, never the full 64 chars.
        assert "e" * 8 in str(clone) and "e" * 64 not in str(clone)

    def test_deployment_errors_are_fault_errors(self):
        assert issubclass(DeploymentError, errors_module.FaultError)
        assert issubclass(StageAbortedError, DeploymentError)
        assert issubclass(ChecksumMismatchError, DeploymentError)
