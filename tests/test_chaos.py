"""Chaos-campaign tests: every scenario must be survivable and safe.

These are the repo's adversarial tests: scripted crash storms, rolling
partitions, flapping links and crashes aimed at in-flight migrations,
all under heartbeat failure detection (so false suspicion is possible),
with the invariant monitor armed the whole time.  A campaign that
returns at all proves no run hung, no object was lost and every safety
invariant held; the assertions on the injection counters prove the
scenario actually did something.
"""

import pytest

from repro.availability import (
    SCENARIOS,
    ChaosCampaign,
    ChaosCampaignParameters,
    ChaosOrchestrator,
    ChaosScenario,
    CrashDuringDeploy,
    CrashDuringMigration,
    CrashStorm,
    FaultToleranceParameters,
    FaultToleranceWorkload,
    run_chaos_campaign,
)
from repro.errors import ConfigurationError, InvariantViolationError

#: Short horizon that still fires every built-in scenario's actions.
SIM_TIME = 900.0


def params(scenario, seed=0, **kw):
    return ChaosCampaignParameters(
        scenario=scenario, seed=seed, sim_time=SIM_TIME, **kw
    )


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            ChaosCampaignParameters(scenario="kaiju").validate()

    def test_scenario_needs_actions(self):
        with pytest.raises(ConfigurationError, match="no actions"):
            ChaosScenario("empty", ()).validate()

    def test_bad_victim_mode_rejected(self):
        scenario = ChaosScenario(
            "bad", (CrashDuringMigration(victim="bystander"),)
        )
        with pytest.raises(ConfigurationError, match="victim"):
            scenario.validate()

    def test_orchestrator_needs_injector(self):
        workload = FaultToleranceWorkload(
            FaultToleranceParameters(policy="sedentary")
        )
        with pytest.raises(ConfigurationError, match="fault injector"):
            ChaosOrchestrator(workload, SCENARIOS["crash-storm"])

    def test_bad_deploy_victim_rejected(self):
        scenario = ChaosScenario(
            "bad-deploy", (CrashDuringDeploy(victim="bystander"),)
        )
        with pytest.raises(ConfigurationError, match="victim"):
            scenario.validate()

    def test_deploy_scenario_needs_deployer(self):
        workload = FaultToleranceWorkload(
            FaultToleranceParameters(
                policy="placement", scripted_faults=True, mttf=0.0
            )
        )
        scenario = ChaosScenario(
            "deploy-crash", (CrashDuringDeploy(victim="coordinator"),)
        )
        assert scenario.needs_deployer
        with pytest.raises(ConfigurationError, match="MigrationDeployer"):
            ChaosOrchestrator(workload, scenario)

    def test_builtin_scenarios_need_no_deployer(self):
        for scenario in SCENARIOS.values():
            assert not scenario.needs_deployer


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_survives_with_invariants_held(self, name):
        result = run_chaos_campaign(params(name))
        assert result.survived
        assert result.invariant_checks > 0
        assert result.ft.raw["calls"] > 0  # progress despite the chaos

    def test_crash_storm_injects_crashes(self):
        result = run_chaos_campaign(params("crash-storm"))
        assert result.injections["crashes_injected"] > 0
        assert result.ft.node_failures > 0

    def test_rolling_partition_causes_false_suspicion(self):
        result = run_chaos_campaign(params("rolling-partition"))
        assert result.injections["partitions_injected"] > 0
        # Partitioned nodes are healthy but silenced: suspicion is
        # false, and it must have recovered (the run survived).
        assert result.ft.false_suspicions > 0

    def test_flapping_links_flap(self):
        result = run_chaos_campaign(params("flapping-links"))
        assert result.injections["link_flaps"] > 0

    def test_crash_during_migration_hits_a_transfer(self):
        result = run_chaos_campaign(params("crash-during-migration"))
        assert result.injections["migration_crashes"] > 0
        # The ambush aborts the transfer; rollback reinstalls at the
        # origin and the no-object-lost invariant verified it.
        assert result.survived

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mayhem_seed_matrix(self, seed):
        result = run_chaos_campaign(params("mayhem", seed=seed))
        assert result.survived
        injections = result.injections
        assert injections["crashes_injected"] > 0
        assert injections["partitions_injected"] > 0
        assert injections["link_flaps"] > 0


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        a = run_chaos_campaign(params("mayhem", seed=5))
        b = run_chaos_campaign(params("mayhem", seed=5))
        assert a.injections == b.injections
        assert a.ft.mean_call_duration == b.ft.mean_call_duration
        assert a.ft.suspicions == b.ft.suspicions
        assert a.ft.raw["calls"] == b.ft.raw["calls"]

    def test_different_seed_different_campaign(self):
        a = run_chaos_campaign(params("mayhem", seed=5))
        b = run_chaos_campaign(params("mayhem", seed=6))
        assert a.ft.mean_call_duration != b.ft.mean_call_duration


class TestInvariantTeeth:
    def test_monitor_catches_seeded_corruption(self):
        # Sabotage the registry behind the runtime's back: the
        # unique-home invariant must notice, and the violation must
        # carry the recent trace for diagnosis.
        campaign = ChaosCampaign(params("crash-storm"))
        campaign.workload.start()
        campaign.workload.system.run(until=50)
        victim = campaign.workload.servers[0]
        campaign.workload.system.registry.depart(victim)
        with pytest.raises(InvariantViolationError) as excinfo:
            campaign.monitor.check_now()
        assert "unique-home" in str(excinfo.value)
        assert campaign.monitor.violations

    def test_executions_on_crashed_guard(self):
        campaign = ChaosCampaign(params("crash-storm"))
        campaign.workload.system.invocations.executions_on_crashed = 1
        with pytest.raises(InvariantViolationError, match="crashed node"):
            campaign.monitor.check_now()


class TestSweepIntegration:
    def test_chaos_sweep_rows(self):
        from repro.experiments.outlook import chaos_sweep, format_outlook_table

        header, rows = chaos_sweep(
            scenarios=["crash-storm"], sim_time=SIM_TIME
        )
        assert header[0] == "scenario"
        assert len(rows) == 1
        assert rows[0][0] == "crash-storm"
        table = format_outlook_table("chaos", header, rows)
        assert "crash-storm" in table
