"""Unit tests for Welch's t-test (validated against scipy)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.significance import (
    ComparisonResult,
    compare_means,
    welch_t_test,
)
from repro.sim.stats import RunningStats


def summarize(data) -> RunningStats:
    s = RunningStats()
    for v in data:
        s.add(float(v))
    return s


class TestWelch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(10.0, 2.0, size=40)
        b = rng.normal(10.5, 3.0, size=55)
        ours = welch_t_test(summarize(a), summarize(b))
        theirs = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.t_statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_identical_samples_not_significant(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=100)
        result = welch_t_test(summarize(data), summarize(data))
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_clear_difference_significant(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.0, 1.0, size=200)
        b = rng.normal(5.0, 1.0, size=200)
        result = welch_t_test(summarize(a), summarize(b))
        assert result.significant(alpha=0.001)
        assert result.ci_high < 0  # a - b is clearly negative

    def test_ci_covers_true_difference(self):
        rng = np.random.default_rng(5)
        covered = 0
        for _ in range(50):
            a = rng.normal(2.0, 1.0, size=60)
            b = rng.normal(1.0, 1.0, size=60)
            r = welch_t_test(summarize(a), summarize(b), confidence=0.95)
            if r.ci_low <= 1.0 <= r.ci_high:
                covered += 1
        assert covered >= 40  # ~95% coverage, generous slack

    def test_zero_variance_equal(self):
        a = summarize([3.0, 3.0, 3.0])
        b = summarize([3.0, 3.0])
        result = welch_t_test(a, b)
        assert result.p_value == 1.0
        assert result.practically_equal(margin=0.01)

    def test_zero_variance_different(self):
        a = summarize([3.0, 3.0])
        b = summarize([4.0, 4.0])
        result = welch_t_test(a, b)
        assert result.p_value == 0.0
        assert result.significant()

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            welch_t_test(summarize([1.0]), summarize([1.0, 2.0]))

    def test_confidence_validation(self):
        a, b = summarize([1, 2, 3]), summarize([1, 2, 3])
        with pytest.raises(ValueError):
            welch_t_test(a, b, confidence=1.5)

    def test_practically_equal_requires_tight_ci(self):
        rng = np.random.default_rng(6)
        a = rng.normal(1.0, 0.01, size=500)
        b = rng.normal(1.001, 0.01, size=500)
        r = welch_t_test(summarize(a), summarize(b))
        assert r.practically_equal(margin=0.05)
        assert not r.practically_equal(margin=1e-5)


class TestCompareMeans:
    def test_within_margin(self):
        assert compare_means(1.00, 1.03, relative_margin=0.05)

    def test_outside_margin(self):
        assert not compare_means(1.0, 1.2, relative_margin=0.05)

    def test_zero_means(self):
        assert compare_means(0.0, 0.0)
