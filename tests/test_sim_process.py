"""Unit tests for generator-based processes."""

import pytest

from repro.errors import Interrupt, ProcessError
from repro.sim.kernel import Environment


class TestProcessBasics:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_runs_and_returns(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        p = env.process(proc(env))
        env.run()
        assert not p.is_alive
        assert p.value == "result"

    def test_process_name_defaults_to_generator(self, env):
        def my_proc(env):
            yield env.timeout(1)

        p = env.process(my_proc(env))
        assert p.name == "my_proc"

    def test_explicit_name(self, env):
        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env), name="worker-7")
        assert "worker-7" in repr(p)

    def test_process_starts_before_same_time_timeouts(self, env):
        order = []

        def proc(env):
            order.append("proc-start")
            yield env.timeout(0)

        env.timeout(0).callbacks.append(lambda e: order.append("timeout"))
        env.process(proc(env))
        env.run()
        assert order[0] == "proc-start"

    def test_waiting_on_another_process(self, env):
        def child(env):
            yield env.timeout(3)
            return 99

        def parent(env):
            value = yield env.process(child(env))
            return value + 1

        p = env.process(parent(env))
        env.run()
        assert p.value == 100

    def test_yield_already_processed_event_continues_inline(self, env):
        def proc(env):
            t = env.timeout(0, value="early")
            yield env.timeout(1)  # t processes meanwhile
            v = yield t  # already processed: no extra delay
            assert env.now == 1
            return v

        p = env.process(proc(env))
        env.run()
        assert p.value == "early"

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield "not an event"

        p = env.process(proc(env))
        p.defuse()
        env.run()
        assert not p.ok
        assert isinstance(p.value, ProcessError)

    def test_active_process_visible_during_execution(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestProcessFailure:
    def test_exception_wrapped_in_process_error(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("inner")

        p = env.process(proc(env))
        p.defuse()
        env.run()
        assert isinstance(p.value, ProcessError)
        assert isinstance(p.value.__cause__, KeyError)

    def test_unhandled_failure_propagates_out_of_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise ValueError("crash")

        env.process(proc(env))
        with pytest.raises(ProcessError):
            env.run()

    def test_waiting_process_sees_failure(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except ProcessError as exc:
                return f"caught: {exc.__cause__}"

        p = env.process(parent(env))
        env.run()
        assert "child failed" in p.value

    def test_failed_event_reraised_at_yield(self, env):
        def proc(env):
            bad = env.event()
            bad.fail(RuntimeError("event failure"))
            try:
                yield bad
            except RuntimeError as exc:
                return str(exc)

        p = env.process(proc(env))
        env.run()
        assert p.value == "event failure"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def attacker(env, target):
            yield env.timeout(5)
            target.interrupt(cause="because")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == ("interrupted", "because", 5)

    def test_interrupted_process_can_rewait(self, env):
        def victim(env):
            timeout = env.timeout(10)
            try:
                yield timeout
            except Interrupt:
                pass
            yield timeout  # the original event still fires at t=10
            return env.now

        def attacker(env, target):
            yield env.timeout(3)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == 10

    def test_interrupting_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        def late(env, target):
            yield env.timeout(5)
            target.interrupt()

        q = env.process(quick(env))
        env.process(late(env, q))
        with pytest.raises(Exception, match="terminated"):
            env.run()

    def test_self_interrupt_rejected(self, env):
        def selfish(env):
            proc = env.active_process
            try:
                proc.interrupt()
            except RuntimeError as exc:
                return str(exc)
            yield env.timeout(1)

        p = env.process(selfish(env))
        env.run()
        assert "not allowed" in p.value

    def test_unhandled_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, target):
            yield env.timeout(1)
            target.interrupt("boom")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(ProcessError):
            env.run()
