"""Unit tests for the invocation service (deterministic latency)."""

import pytest

from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem
from repro.sim.trace import Tracer


@pytest.fixture
def system():
    """3 nodes, deterministic unit latency, M=6, tracing enabled."""
    return DistributedSystem(
        nodes=3,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
        tracer=Tracer(),
    )


def run_invocation(system, caller_node, obj, body=None):
    def proc(env):
        result = yield from system.invocations.invoke(caller_node, obj, body=body)
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestBasicInvocation:
    def test_local_call_is_free(self, system):
        server = system.create_server(node=1)
        result = run_invocation(system, 1, server)
        assert result.duration == 0.0
        assert result.was_local
        assert system.invocations.local_calls == 1

    def test_remote_call_costs_round_trip(self, system):
        server = system.create_server(node=2)
        result = run_invocation(system, 0, server)
        assert result.duration == pytest.approx(2.0)  # call + result
        assert not result.was_local
        assert system.invocations.remote_calls == 1

    def test_invocation_count_incremented(self, system):
        server = system.create_server(node=0)
        run_invocation(system, 1, server)
        assert server.invocation_count == 1

    def test_durations_aggregated(self, system):
        server = system.create_server(node=2)

        def proc(env):
            yield from system.invocations.invoke(0, server)
            yield from system.invocations.invoke(2, server)

        system.env.process(proc(system.env))
        system.env.run()
        assert system.invocations.durations.count == 2
        assert system.invocations.durations.total == pytest.approx(2.0)

    def test_trace_records_request_and_reply(self, system):
        server = system.create_server(node=1)
        run_invocation(system, 0, server)
        tracer = system.tracer
        assert tracer.count("invocation.request") == 1
        assert tracer.count("invocation.reply") == 1


class TestBlockingOnTransit:
    def test_call_blocks_until_reinstalled(self, system):
        server = system.create_server(node=1)

        def migrator(env):
            yield from system.migrations.migrate([server], 2)

        def caller(env):
            yield env.timeout(1)  # migration is mid-flight (M=6)
            result = yield from system.invocations.invoke(2, server)
            return (env.now, result)

        system.env.process(migrator(system.env))
        p = system.env.process(caller(system.env))
        system.env.run()
        end_time, result = p.value
        # Blocked from t=1 until install at t=6, then local call at node 2.
        assert end_time == pytest.approx(6.0)
        assert result.blocked_time == pytest.approx(5.0)
        assert result.duration == pytest.approx(5.0)
        assert system.invocations.blocked_calls == 1

    def test_midflight_departure_redirects_reply(self, system):
        """Callee leaves while the request is on the wire: the request
        waits and is served at the new location."""
        server = system.create_server(node=1)

        def caller(env):
            result = yield from system.invocations.invoke(0, server)
            return (env.now, result)

        def migrator(env):
            yield env.timeout(0.5)  # request sent at t=0, in flight
            yield from system.migrations.migrate([server], 2)

        p = system.env.process(caller(system.env))
        system.env.process(migrator(system.env))
        system.env.run()
        end_time, result = p.value
        # Request arrives t=1 (object left at 0.5, lands at 6.5), then
        # reply from node 2 costs 1: done at 7.5.
        assert end_time == pytest.approx(7.5)
        assert result.blocked_time == pytest.approx(5.5)


class TestNestedInvocation:
    def test_body_runs_at_callee_and_adds_time(self, system):
        outer = system.create_server(node=1)
        inner = system.create_server(node=2)

        def body(callee_node):
            yield from system.invocations.invoke(callee_node, inner)

        result = run_invocation(system, 0, outer, body=body)
        # outer round trip 2 + inner round trip 2 (node 1 <-> node 2).
        assert result.duration == pytest.approx(4.0)
        assert inner.invocation_count == 1

    def test_colocated_nested_call_is_free(self, system):
        outer = system.create_server(node=1)
        inner = system.create_server(node=1)

        def body(callee_node):
            yield from system.invocations.invoke(callee_node, inner)

        result = run_invocation(system, 0, outer, body=body)
        assert result.duration == pytest.approx(2.0)
