"""Tests for the telemetry exporters and the trace-schema validator."""

import json

import pytest

from repro.sim.kernel import Environment
from repro.telemetry import ERROR, Telemetry
from repro.telemetry.export import (
    SYSTEM_PID,
    export_run,
    summary_table,
    to_chrome_trace,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.telemetry.validate import main as validate_main
from repro.telemetry.validate import validate_chrome_trace


def _populated_telemetry():
    """A small telemetry sink with spans on two nodes and some metrics."""
    env = Environment()
    tel = Telemetry()
    tel.bind(env)

    def run(env):
        root = tel.start_span("move", node=1, object="obj")
        # instant child on another node (zero duration)
        child = tel.start_span("place.locked", node=2, parent=root)
        tel.end_span(child, holder="blk")
        yield env.timeout(3.0)
        bad = tel.start_span("transfer", node=2, parent=root)
        yield env.timeout(1.0)
        tel.end_span(bad, status=ERROR, error="NodeDownError")
        tel.end_span(root, outcome="granted")

    env.process(run(env))
    env.run()

    tel.metrics.counter("migration.moves").inc(3)
    tel.metrics.histogram("network.latency", buckets=(1.0, 5.0)).observe(0.4)
    g = tel.metrics.gauge("kernel.queue_depth", track_series=True)
    g.set(2)
    g.set(5)
    return tel


class TestJsonlWriters:
    def test_metrics_jsonl_one_doc_per_line(self, tmp_path):
        tel = _populated_telemetry()
        path = write_metrics_jsonl(tel, tmp_path / "metrics.jsonl")
        lines = path.read_text().splitlines()
        docs = [json.loads(line) for line in lines]
        assert len(docs) == 3
        assert sorted(d["name"] for d in docs) == [
            "kernel.queue_depth",
            "migration.moves",
            "network.latency",
        ]

    def test_spans_jsonl_round_trips(self, tmp_path):
        tel = _populated_telemetry()
        path = write_spans_jsonl(tel, tmp_path / "spans.jsonl")
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(docs) == len(tel.spans)
        by_name = {d["name"]: d for d in docs}
        assert by_name["place.locked"]["parent_id"] == by_name["move"]["span_id"]
        assert by_name["transfer"]["status"] == "error"
        assert by_name["transfer"]["tags"]["error"] == "NodeDownError"


class TestChromeTrace:
    def test_structure(self):
        tel = _populated_telemetry()
        doc = to_chrome_trace(tel)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]

        meta = [e for e in events if e["ph"] == "M"]
        lanes = {e["args"]["name"] for e in meta}
        assert {"system", "node-1", "node-2"} <= lanes

        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["move"]["pid"] == 1
        assert complete["move"]["dur"] == pytest.approx(4.0)
        assert complete["transfer"]["cat"] == "span,error"

        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["place.locked"]
        assert instants[0]["s"] == "t"

        counters = [e for e in events if e["ph"] == "C"]
        assert [e["args"]["value"] for e in counters] == [2, 5]
        assert all(e["pid"] == SYSTEM_PID for e in counters)

    def test_open_spans_skipped(self):
        tel = Telemetry()
        tel.start_span("never-ends", node=1)
        doc = to_chrome_trace(tel)
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_spans_share_tid_per_trace(self):
        tel = _populated_telemetry()
        events = [e for e in to_chrome_trace(tel)["traceEvents"] if e["ph"] in ("X", "i")]
        assert len({e["tid"] for e in events}) == 1


class TestValidator:
    def test_exporter_output_validates(self):
        assert validate_chrome_trace(to_chrome_trace(_populated_telemetry())) == []

    def test_missing_top_level(self):
        assert validate_chrome_trace({}) == [
            "top-level 'traceEvents' missing or not a list"
        ]

    def test_bad_events_flagged(self):
        doc = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 0, "ts": 0},
                {"ph": "X", "name": "x", "pid": 0, "ts": -1, "dur": 1},
                {"ph": "X", "name": "x", "pid": "zero", "ts": 0},
                {"ph": "C", "name": "x", "pid": 0, "ts": 0, "args": {}},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("unknown phase" in p for p in problems)
        assert any("'ts' must be a number >= 0" in p for p in problems)
        assert any("'pid' must be an int" in p for p in problems)
        assert any("needs 'dur'" in p for p in problems)
        assert any("numeric args.value" in p for p in problems)
        assert any("process_name" in p for p in problems)

    def test_cli(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(to_chrome_trace(_populated_telemetry())))
        assert validate_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_main([str(bad)]) == 1
        assert validate_main([]) == 2
        assert validate_main([str(tmp_path / "missing.json")]) == 1


class TestSummaryTable:
    def test_renders_metrics_and_spans(self):
        text = summary_table(_populated_telemetry())
        assert "migration.moves" in text
        assert "network.latency" in text
        assert "histogram" in text
        assert "place.locked" in text
        # transfer span errored once
        assert any(
            line.split()[:3] == ["transfer", "1", "1"]
            for line in text.splitlines()
        )
        assert "open spans: 0" in text

    def test_empty_telemetry(self):
        text = summary_table(Telemetry())
        assert "(none)" in text


class TestExportRun:
    def test_writes_all_artifacts(self, tmp_path):
        tel = _populated_telemetry()
        paths = export_run(tel, tmp_path / "out")
        assert set(paths) == {"metrics", "spans", "trace", "summary"}
        for path in paths.values():
            assert path.exists()
        doc = json.loads(paths["trace"].read_text())
        assert validate_chrome_trace(doc) == []
        assert "telemetry summary" in paths["summary"].read_text()


class TestMetricsValidator:
    """metrics.jsonl schema checks, including the live runtime's names."""

    def _live_telemetry(self):
        tel = Telemetry()
        tel.metrics.counter("live.transport.frames_sent").inc(12)
        tel.metrics.counter("live.transport.frames_received").inc(11)
        tel.metrics.counter("wal.records_appended").inc(40)
        hist = tel.metrics.histogram(
            "live.transfer.latency_s", buckets=(0.01, 0.1, 1.0)
        )
        hist.observe(0.005)
        hist.observe(0.5)
        return tel

    def test_exported_live_metrics_validate(self, tmp_path):
        from repro.telemetry.validate import validate_metrics_jsonl

        path = write_metrics_jsonl(self._live_telemetry(), tmp_path / "m.jsonl")
        assert validate_metrics_jsonl(path.read_text()) == []

    def test_live_names_are_type_pinned(self):
        from repro.telemetry.validate import validate_metric_doc

        wrong = {
            "name": "live.transfer.latency_s",
            "type": "counter",
            "labels": {},
            "value": 3,
            "updated_at": 0.0,
        }
        assert any(
            "must be a histogram" in p for p in validate_metric_doc(wrong)
        )

    def test_histogram_consistency_enforced(self):
        from repro.telemetry.validate import validate_metric_doc

        doc = {
            "name": "live.transfer.latency_s",
            "type": "histogram",
            "labels": {},
            "buckets": [0.1, 1.0],
            "counts": [1, 0, 2],
            "sum": 2.2,
            "count": 5,  # disagrees with 1 + 0 + 2
            "updated_at": 0.0,
        }
        assert any(
            "disagrees" in p for p in validate_metric_doc(doc)
        )
        doc["counts"] = [1, 0]  # missing the overflow bucket
        assert any(
            "len(buckets)+1" in p for p in validate_metric_doc(doc)
        )

    def test_counter_must_not_go_negative(self):
        from repro.telemetry.validate import validate_metric_doc

        doc = {
            "name": "wal.records_appended",
            "type": "counter",
            "labels": {},
            "value": -1,
            "updated_at": 0.0,
        }
        assert any("negative" in p for p in validate_metric_doc(doc))

    def test_cli_dispatches_metrics_by_filename(self, tmp_path, capsys):
        path = write_metrics_jsonl(
            self._live_telemetry(), tmp_path / "metrics.jsonl"
        )
        assert validate_main([str(path)]) == 0
        bad = tmp_path / "metrics-bad.jsonl"
        bad.write_text('{"name": "x", "type": "mystery"}\n')
        assert validate_main([str(bad)]) == 1


class TestLiveSpanSchemas:
    def test_recovery_spans_require_their_tags(self):
        from repro.telemetry.validate import validate_span_doc

        base = {
            "trace_id": 1,
            "span_id": 2,
            "parent_id": None,
            "name": "wal.replay",
            "node": -1,
            "start": 0.0,
            "end": 1.0,
            "status": "ok",
            "tags": {},
        }
        assert any(
            "missing required tag 'records'" in p
            for p in validate_span_doc(base)
        )
        base["tags"] = {"records": 17}
        assert validate_span_doc(base) == []
        recover = dict(base, name="live.recover", tags={})
        assert any(
            "missing required tag 'mode'" in p
            for p in validate_span_doc(recover)
        )
