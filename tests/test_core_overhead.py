"""Unit tests for the dynamic policies' overhead accounting (§3.3)."""

import pytest

from repro.core.moveblock import MoveBlock
from repro.core.policies.comparing import ComparingNodes
from repro.core.policies.reinstantiation import ComparingReinstantiation
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )


def do(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestValidation:
    def test_negative_record_time_rejected(self, system):
        with pytest.raises(ValueError):
            ComparingNodes(system, record_transfer_time=-1.0)


class TestEndForwarding:
    def test_free_mode_end_sends_nothing(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        block = MoveBlock(0, server)
        do(system, policy.move(block))
        before = system.network.remote_messages
        do(system, policy.end(block))
        assert system.network.remote_messages == before
        assert policy.overhead_messages == 0

    def test_charged_mode_remote_end_costs_one_message(self, system):
        policy = ComparingNodes(system, charge_overhead=True)
        server = system.create_server(node=2)
        # A rejected-at-distance block: object stays at node 2, the
        # requester at node 0 must forward its end-request.
        winner = MoveBlock(2, server)
        do(system, policy.move(winner))  # local grant, stays at 2
        loser = MoveBlock(0, server)
        do(system, policy.move(loser))
        before = system.network.remote_messages
        cost_before = loser.migration_cost
        do(system, policy.end(loser))
        assert system.network.remote_messages == before + 1
        assert policy.overhead_messages == 1
        assert loser.migration_cost == pytest.approx(cost_before + 1.0)

    def test_charged_mode_local_end_is_free(self, system):
        policy = ComparingNodes(system, charge_overhead=True)
        server = system.create_server(node=2)
        block = MoveBlock(0, server)
        do(system, policy.move(block))  # granted: object now at node 0
        before = system.network.remote_messages
        do(system, policy.end(block))
        assert system.network.remote_messages == before
        assert policy.overhead_messages == 0


class TestRecordPayload:
    def test_migration_carries_records(self, system):
        policy = ComparingNodes(
            system, charge_overhead=True, record_transfer_time=0.5
        )
        server = system.create_server(node=2)
        # Two open (rejected) requests pile up records at node 1.
        w = MoveBlock(2, server)
        do(system, policy.move(w))
        do(system, policy.move(MoveBlock(1, server)))
        do(system, policy.move(MoveBlock(1, server)))
        do(system, policy.end(w))
        # Node 1 now has the plurality: the next request registers
        # itself (3 open records total) and migrates with the records'
        # payload: M + 3*0.5 = 7.5 transfer time.
        granted = MoveBlock(1, server)
        do(system, policy.move(granted))
        assert granted.granted
        # request message (1) + transfer (7.5).
        assert granted.migration_cost == pytest.approx(8.5)

    def test_free_mode_payload_zero(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        do(system, policy.move(MoveBlock(1, server)))
        assert policy._record_payload(server) == 0.0


class TestReinstantiationOverhead:
    def test_charged_end_migration_includes_payload(self, system):
        policy = ComparingReinstantiation(
            system,
            majority_margin=2,
            charge_overhead=True,
            record_transfer_time=0.5,
        )
        server = system.create_server(node=2)
        winner = MoveBlock(0, server)
        do(system, policy.move(winner))
        for _ in range(2):
            do(system, policy.move(MoveBlock(1, server)))
        do(system, policy.end(winner))
        system.env.run()
        # Reinstantiated towards node 1 with 2 open records (the
        # winner's was deregistered): M + 2*0.5 = 7 transfer.
        assert server.node_id == 1
        assert policy.system_migration_cost == pytest.approx(7.0)

    def test_inherits_overhead_flags(self, system):
        policy = ComparingReinstantiation(
            system, charge_overhead=True, record_transfer_time=0.125
        )
        assert policy.charge_overhead
        assert policy.record_transfer_time == 0.125
