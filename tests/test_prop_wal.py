"""Property-based WAL suite: the invariants recovery leans on.

Three properties, hammered with hypothesis-generated record histories:

* **prefix-replay idempotence** — folding any prefix of a log into a
  :class:`WalState` twice yields exactly the state of folding it once
  (``apply`` skips by seq), so "replay, then keep appending" is safe;
* **single-host invariant** — no record history can make the placement
  map host an object on two nodes: commits *move* the single entry;
* **torn-tail tolerance** — chopping any suffix of the final line off
  a valid log still replays the untouched prefix (0 or 1 records
  discarded, never an exception).
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.live import wal as wal_module
from repro.runtime.live.wal import (
    ArbitrationWal,
    WalRecord,
    WalState,
    read_records,
)

NUM_OBJECTS = 6
WORKERS = (1, 2, 3)


def _init_record():
    return (
        wal_module.INIT,
        {
            "num_objects": NUM_OBJECTS,
            "arbitration": "central",
            "workers": list(WORKERS),
            "placement": {
                str(oid): WORKERS[oid % len(WORKERS)]
                for oid in range(NUM_OBJECTS)
            },
        },
    )


@st.composite
def record_histories(draw):
    """An INIT followed by a plausible arbitration history.

    Grants mint sequential transfer/block ids; later records pick a
    transfer id from the range minted so far (possibly one that does
    not exist — replay must shrug those off, exactly as it shrugs off
    settlement records for transfers a later log rewrite dropped).
    """
    history = [_init_record()]
    minted = 0
    steps = draw(st.integers(min_value=0, max_value=25))
    for _ in range(steps):
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice == 0 or minted == 0:
            minted += 1
            mover, source = draw(
                st.sampled_from(
                    [(a, b) for a in WORKERS for b in WORKERS if a != b]
                )
            )
            history.append(
                (
                    wal_module.GRANT,
                    {
                        "block_id": minted,
                        "object_id": draw(
                            st.integers(0, NUM_OBJECTS - 1)
                        ),
                        "mover": mover,
                        "source": source,
                        "transfer_id": minted,
                    },
                )
            )
        else:
            tid = draw(st.integers(1, minted + 1))
            kind = draw(
                st.sampled_from(
                    [
                        wal_module.PLACE,
                        wal_module.ROLLBACK,
                        wal_module.REVERT,
                        wal_module.FAILED,
                        wal_module.END,
                    ]
                )
            )
            payload = (
                {"block_id": tid}
                if kind == wal_module.END
                else {"transfer_id": tid}
            )
            history.append((kind, payload))
    return history


def _fold(records):
    state = WalState()
    for record in records:
        state.apply(record)
    return state


def _encode(history):
    return [
        WalRecord(seq=i, kind=kind, data=data)
        for i, (kind, data) in enumerate(history, start=1)
    ]


class TestPrefixReplayIdempotence:
    @given(history=record_histories(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_replaying_a_prefix_again_is_a_noop(self, history, data):
        records = _encode(history)
        cut = data.draw(st.integers(0, len(records)))
        state = _fold(records)
        replayed_twice = copy.deepcopy(state)
        for record in records[:cut]:
            assert replayed_twice.apply(record) is False
        assert replayed_twice == state

    @given(history=record_histories())
    @settings(max_examples=60, deadline=None)
    def test_fold_then_continue_equals_fold_of_whole(self, history):
        records = _encode(history)
        for cut in (len(records) // 2, len(records)):
            state = _fold(records[:cut])
            for record in records[cut:]:
                state.apply(record)
            assert state == _fold(records)


class TestSingleHostInvariant:
    @given(history=record_histories())
    @settings(max_examples=80, deadline=None)
    def test_every_object_hosted_exactly_once(self, history):
        state = _fold(_encode(history))
        assert sorted(state.placement) == list(range(NUM_OBJECTS))
        for node in state.placement.values():
            assert node in WORKERS


class TestTornTailTolerance:
    @given(history=record_histories(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_final_line_truncation_replays_the_prefix(
        self, history, data, tmp_path_factory
    ):
        path = str(
            tmp_path_factory.mktemp("prop-wal") / "arb.wal"
        )
        with ArbitrationWal(path, fsync=False) as wal:
            for kind, payload in history:
                wal.append(kind, payload)
        text = open(path).read()
        assert text.endswith("\n")
        body = text[:-1]
        last_line_start = body.rfind("\n") + 1
        # Chop anywhere inside the final record (torn append) — or cut
        # exactly at its start (the append never reached the disk).
        cut = data.draw(st.integers(last_line_start, len(body)))
        open(path, "w").write(body[:cut])
        records, truncated = read_records(path)
        full = _encode(history)
        survivors = len(full) if cut == len(body) else len(full) - 1
        assert [r.seq for r in records] == [
            r.seq for r in full[:survivors]
        ]
        assert truncated == (0 if cut in (len(body), last_line_start) else 1)
        assert _fold(records) == _fold(full[:survivors])
