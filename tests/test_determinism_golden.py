"""Bit-identical determinism guards for the fast-path kernel.

The golden metric tuples below were produced by the heap-only kernel on
the pre-fast-path main branch.  The fast-path kernel (URGENT deque,
pooled ``env.sleep``, inlined run loop) must reproduce them *exactly*
— equality is ``==`` on floats, not ``approx`` — and results must not
depend on whether the cell cache or the process pool is in the loop.
"""

import json

from repro.experiments.cache import CellCache
from repro.experiments.executor import ParallelExecutor
from repro.experiments.persistence import params_to_dict
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell
from repro.workload.params import SimulationParameters

#: (policy, clients, seed) -> (mean_communication_time_per_call,
#: mean_call_duration, mean_migration_time_per_call, simulated_time)
#: under StoppingConfig.fast(), recorded on the heap-only kernel.
GOLDEN_CELLS = {
    ("placement", 5, 3): (
        0.8292332162257126,
        0.4038685880806477,
        0.4253646281450649,
        24000.0,
    ),
    ("sedentary", 5, 3): (
        1.3569436330042595,
        1.3569436330042595,
        0.0,
        16000.0,
    ),
}

#: Loose-but-quick stopping rule for the multi-cell determinism tests.
TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)


def _metrics(result):
    return (
        result.mean_communication_time_per_call,
        result.mean_call_duration,
        result.mean_migration_time_per_call,
        result.simulated_time,
    )


def _fingerprint(result):
    """Canonical serialization — catches drift in *any* field."""
    document = {
        "params": params_to_dict(result.params),
        "mean_communication_time_per_call": (
            result.mean_communication_time_per_call
        ),
        "mean_call_duration": result.mean_call_duration,
        "mean_migration_time_per_call": result.mean_migration_time_per_call,
        "simulated_time": result.simulated_time,
        "raw": result.raw,
    }
    return json.dumps(document, sort_keys=True)


class TestGoldenMetrics:
    def test_seeded_cells_bit_identical_to_pre_fastpath_kernel(self):
        for (policy, clients, seed), expected in GOLDEN_CELLS.items():
            params = SimulationParameters(
                policy=policy, clients=clients, seed=seed
            )
            result = run_cell(params, stopping=StoppingConfig.fast())
            assert _metrics(result) == expected, (policy, clients, seed)

    def test_repeated_runs_identical(self):
        params = SimulationParameters(policy="placement", clients=5, seed=3)
        a = run_cell(params, stopping=StoppingConfig.fast())
        b = run_cell(params, stopping=StoppingConfig.fast())
        assert _fingerprint(a) == _fingerprint(b)


class TestCacheDeterminism:
    def test_warm_cache_runs_zero_simulations_and_matches_cold(
        self, tmp_path
    ):
        jobs = [
            (
                SimulationParameters(policy=policy, clients=5, seed=seed),
                TINY,
            )
            for policy in ("placement", "sedentary")
            for seed in (1, 2)
        ]

        cold = ParallelExecutor(workers=1, cache=CellCache(root=tmp_path))
        cold_results = cold.run_cells(jobs)
        assert cold.cache_misses == len(jobs)
        assert cold.cells_executed == len(jobs)

        warm = ParallelExecutor(workers=1, cache=CellCache(root=tmp_path))
        warm_results = warm.run_cells(jobs)
        assert warm.cells_executed == 0
        assert warm.cache_hits == len(jobs)
        assert warm.cache_misses == 0

        uncached = ParallelExecutor(workers=1).run_cells(jobs)

        for cold_r, warm_r, plain_r in zip(
            cold_results, warm_results, uncached
        ):
            assert _fingerprint(cold_r) == _fingerprint(warm_r)
            assert _fingerprint(cold_r) == _fingerprint(plain_r)


class TestWorkerDeterminism:
    def test_workers_1_vs_4_identical(self):
        jobs = [
            (
                SimulationParameters(policy=policy, clients=3, seed=seed),
                TINY,
            )
            for policy in ("placement", "sedentary")
            for seed in (0, 1)
        ]
        serial = ParallelExecutor(workers=1).run_cells(jobs)
        pooled = ParallelExecutor(workers=4).run_cells(jobs)
        assert [_fingerprint(r) for r in serial] == [
            _fingerprint(r) for r in pooled
        ]
