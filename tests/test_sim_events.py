"""Unit tests for the event primitives."""

import pytest

from repro.errors import EventAlreadyTriggered
from repro.sim.events import AllOf, AnyOf, ConditionValue, Event, Timeout
from repro.sim.kernel import Environment


class TestEvent:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event.callbacks == []

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_succeed_twice_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_records_not_ok(self, env):
        event = env.event()
        event.fail(ValueError("x"))
        assert event.triggered
        assert not event.ok
        assert isinstance(event.value, ValueError)

    def test_unhandled_failure_crashes_run(self, env):
        event = env.event()
        event.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_defused_failure_does_not_crash(self, env):
        event = env.event()
        event.fail(ValueError("defused"))
        event.defuse()
        env.run()  # does not raise

    def test_callbacks_invoked_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_repr_shows_state(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        env.run()
        assert "processed" in repr(event)


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_fires_at_delay(self, env):
        t = env.timeout(5, value="done")
        env.run()
        assert env.now == 5
        assert t.value == "done"

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0)
        env.run()
        assert env.now == 0
        assert t.processed

    def test_timeouts_fire_in_order(self, env):
        order = []
        for delay in (3, 1, 2):
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d)
            )
        env.run()
        assert order == [1, 2, 3]

    def test_fifo_among_equal_times(self, env):
        order = []
        for tag in ("a", "b", "c"):
            env.timeout(7).callbacks.append(lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        a, b = env.timeout(1, value="a"), env.timeout(4, value="b")
        cond = env.all_of([a, b])
        env.run()
        assert cond.processed
        assert env.now == 4
        assert cond.value == {a: "a", b: "b"}

    def test_any_of_fires_on_first(self, env):
        a, b = env.timeout(1, value="a"), env.timeout(4, value="b")
        results = {}
        cond = env.any_of([a, b])
        cond.callbacks.append(lambda e: results.update(time=env.now))
        env.run()
        assert results["time"] == 1
        assert a in cond.value
        assert b not in cond.value

    def test_empty_all_of_trivially_true(self, env):
        cond = env.all_of([])
        assert cond.triggered
        env.run()
        assert len(cond.value) == 0

    def test_empty_any_of_trivially_true(self, env):
        cond = env.any_of([])
        assert cond.triggered

    def test_operators_build_conditions(self, env):
        a, b = env.timeout(1), env.timeout(2)
        both = a & b
        either = a | b
        assert isinstance(both, AllOf)
        assert isinstance(either, AnyOf)
        env.run()
        assert both.processed and either.processed

    def test_failed_subevent_fails_condition(self, env):
        a = env.timeout(1)
        b = env.event()
        cond = env.all_of([a, b])
        cond.defuse()
        b.fail(RuntimeError("sub failure"))
        env.run()
        assert cond.triggered
        assert not cond.ok

    def test_mixed_environments_rejected(self, env):
        other = Environment()
        a, b = env.timeout(1), other.timeout(1)
        with pytest.raises(ValueError):
            env.all_of([a, b])

    def test_condition_with_already_processed_event(self, env):
        a = env.timeout(1, value="early")
        env.run()
        cond = env.all_of([a])
        env.run()
        assert cond.processed
        assert cond.value[a] == "early"


class TestConditionValue:
    def test_mapping_interface(self, env):
        a = env.timeout(0, value=10)
        b = env.timeout(0, value=20)
        cond = env.all_of([a, b])
        env.run()
        value = cond.value
        assert isinstance(value, ConditionValue)
        assert value[a] == 10
        assert list(value) == [a, b]
        assert len(value) == 2
        assert value.todict() == {a: 10, b: 20}
        assert value == {a: 10, b: 20}

    def test_missing_key_raises(self, env):
        a = env.timeout(0)
        other = env.timeout(0)
        cond = env.all_of([a])
        env.run()
        with pytest.raises(KeyError):
            cond.value[other]
