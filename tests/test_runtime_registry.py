"""Unit tests for the object registry."""

import pytest

from repro.errors import UnknownNodeError, UnknownObjectError
from repro.runtime.node import Node
from repro.runtime.objects import DistributedObject
from repro.runtime.registry import ObjectRegistry


@pytest.fixture
def registry(env):
    reg = ObjectRegistry()
    for i in range(3):
        reg.add_node(Node(i))
    return reg


def make_obj(env, registry, object_id, node_id):
    obj = DistributedObject(env, object_id=object_id, node_id=node_id)
    registry.add_object(obj)
    return obj


class TestNodes:
    def test_duplicate_node_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_node(Node(0))

    def test_unknown_node(self, registry):
        with pytest.raises(UnknownNodeError):
            registry.node(9)

    def test_nodes_sorted(self, registry):
        assert [n.node_id for n in registry.nodes] == [0, 1, 2]

    def test_node_id_validation(self):
        with pytest.raises(ValueError):
            Node(-1)

    def test_node_equality(self):
        assert Node(1) == Node(1, name="other")
        assert Node(1) != Node(2)


class TestObjects:
    def test_add_records_residency(self, env, registry):
        obj = make_obj(env, registry, 1, 2)
        assert registry.location_of(1) == 2
        assert obj in registry.objects_at(2)
        assert registry.node(2).population == 1

    def test_duplicate_object_rejected(self, env, registry):
        make_obj(env, registry, 1, 0)
        with pytest.raises(ValueError):
            make_obj(env, registry, 1, 1)

    def test_object_on_unknown_node_rejected(self, env, registry):
        with pytest.raises(UnknownNodeError):
            make_obj(env, registry, 1, 7)

    def test_unknown_object(self, registry):
        with pytest.raises(UnknownObjectError):
            registry.get(42)

    def test_objects_sorted_by_id(self, env, registry):
        make_obj(env, registry, 5, 0)
        make_obj(env, registry, 2, 0)
        assert [o.object_id for o in registry.objects] == [2, 5]


class TestResidencyMaintenance:
    def test_depart_arrive_cycle(self, env, registry):
        obj = make_obj(env, registry, 1, 0)
        registry.depart(obj)
        obj.begin_transit()
        registry.check_consistency()
        obj.install(2)
        registry.arrive(obj, 2)
        registry.check_consistency()
        assert registry.location_of(1) == 2
        assert registry.node(0).population == 0
        assert registry.node(2).population == 1

    def test_consistency_catches_stale_residency(self, env, registry):
        obj = make_obj(env, registry, 1, 0)
        registry.node(1).resident_ids.add(obj.object_id)  # corrupt
        with pytest.raises(AssertionError):
            registry.check_consistency()

    def test_consistency_catches_missing_residency(self, env, registry):
        obj = make_obj(env, registry, 1, 0)
        registry.node(0).resident_ids.discard(obj.object_id)  # corrupt
        with pytest.raises(AssertionError):
            registry.check_consistency()
