"""Unit tests for the trace log."""

import pytest

from repro.sim.trace import NULL_TRACER, NullTracer, Tracer


class TestTracer:
    def test_records_in_order(self):
        t = Tracer()
        t.emit(1.0, "a", x=1)
        t.emit(2.0, "b", y=2)
        assert [r.kind for r in t] == ["a", "b"]
        assert len(t) == 2

    def test_kind_filter(self):
        t = Tracer(kinds={"keep"})
        t.emit(0, "keep")
        t.emit(0, "drop")
        assert t.count("keep") == 1
        assert t.count("drop") == 0

    def test_of_kind(self):
        t = Tracer()
        t.emit(0, "x", v=1)
        t.emit(1, "y")
        t.emit(2, "x", v=2)
        assert [r.detail["v"] for r in t.of_kind("x")] == [1, 2]

    def test_subscribe_listener(self):
        t = Tracer()
        seen = []
        t.subscribe(lambda r: seen.append(r.kind))
        t.emit(0, "ping")
        assert seen == ["ping"]

    def test_dump_renders_lines(self):
        t = Tracer()
        t.emit(1.5, "migration.start", object_id=3)
        out = t.dump()
        assert "migration.start" in out
        assert "object_id=3" in out

    def test_enabled_flag(self):
        assert Tracer().enabled

    def test_empty_tracer_is_truthy(self):
        # `tracer or default` must never silently drop a real tracer.
        tracer = Tracer()
        assert bool(tracer)
        assert (tracer or None) is tracer


class TestNullTracer:
    def test_swallows_everything(self):
        assert len(NULL_TRACER) == 0
        NULL_TRACER.emit(0, "anything", x=1)
        assert len(NULL_TRACER) == 0

    def test_not_enabled(self):
        assert not NULL_TRACER.enabled
        assert not NullTracer().enabled

    def test_subscribe_rejected(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.subscribe(lambda r: None)
