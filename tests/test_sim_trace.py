"""Unit tests for the trace log."""

import pytest

from repro.sim.trace import NULL_TRACER, NullTracer, Tracer


class TestTracer:
    def test_records_in_order(self):
        t = Tracer()
        t.emit(1.0, "a", x=1)
        t.emit(2.0, "b", y=2)
        assert [r.kind for r in t] == ["a", "b"]
        assert len(t) == 2

    def test_kind_filter(self):
        t = Tracer(kinds={"keep"})
        t.emit(0, "keep")
        t.emit(0, "drop")
        assert t.count("keep") == 1
        assert t.count("drop") == 0

    def test_of_kind(self):
        t = Tracer()
        t.emit(0, "x", v=1)
        t.emit(1, "y")
        t.emit(2, "x", v=2)
        assert [r.detail["v"] for r in t.of_kind("x")] == [1, 2]

    def test_subscribe_listener(self):
        t = Tracer()
        seen = []
        t.subscribe(lambda r: seen.append(r.kind))
        t.emit(0, "ping")
        assert seen == ["ping"]

    def test_dump_renders_lines(self):
        t = Tracer()
        t.emit(1.5, "migration.start", object_id=3)
        out = t.dump()
        assert "migration.start" in out
        assert "object_id=3" in out

    def test_enabled_flag(self):
        assert Tracer().enabled

    def test_empty_tracer_is_truthy(self):
        # `tracer or default` must never silently drop a real tracer.
        tracer = Tracer()
        assert bool(tracer)
        assert (tracer or None) is tracer


class TestNullTracer:
    def test_swallows_everything(self):
        assert len(NULL_TRACER) == 0
        NULL_TRACER.emit(0, "anything", x=1)
        assert len(NULL_TRACER) == 0

    def test_not_enabled(self):
        assert not NULL_TRACER.enabled
        assert not NullTracer().enabled

    def test_subscribe_rejected(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.subscribe(lambda r: None)


class TestKindPatterns:
    def test_exact_match_unchanged(self):
        t = Tracer(kinds={"migration.start"})
        t.emit(0, "migration.start")
        t.emit(0, "migration.done")
        assert [r.kind for r in t] == ["migration.start"]

    def test_prefix_pattern(self):
        t = Tracer(kinds={"migration.*"})
        t.emit(0, "migration.start")
        t.emit(0, "migration.abort")
        t.emit(0, "move.rejected")
        assert [r.kind for r in t] == ["migration.start", "migration.abort"]

    def test_mixed_exact_and_prefix(self):
        t = Tracer(kinds={"move.rejected", "migration.*"})
        t.emit(0, "move.rejected")
        t.emit(0, "move.granted")
        t.emit(0, "migration.done")
        assert [r.kind for r in t] == ["move.rejected", "migration.done"]

    def test_star_matches_prefix_not_substring(self):
        t = Tracer(kinds={"migration.*"})
        t.emit(0, "pre.migration.start")
        assert len(t) == 0

    def test_filter_can_be_reassigned(self):
        t = Tracer(kinds={"a"})
        t.kinds = {"b.*"}
        t.emit(0, "a")
        t.emit(0, "b.c")
        assert [r.kind for r in t] == ["b.c"]


class TestClear:
    def test_clear_drops_records_keeps_filter(self):
        t = Tracer(kinds={"keep.*"})
        t.emit(0, "keep.a")
        t.clear()
        assert len(t) == 0
        t.emit(0, "keep.b")
        t.emit(0, "drop")
        assert [r.kind for r in t] == ["keep.b"]

    def test_clear_keeps_listeners(self):
        t = Tracer()
        seen = []
        t.subscribe(lambda r: seen.append(r.kind))
        t.emit(0, "a")
        t.clear()
        t.emit(0, "b")
        assert seen == ["a", "b"]


class TestRingTracer:
    def test_capacity_bounds_retention(self):
        from repro.sim.trace import RingTracer

        t = RingTracer(capacity=3)
        for i in range(5):
            t.emit(i, f"k{i}")
        assert [r.kind for r in t] == ["k2", "k3", "k4"]

    def test_recent_tail(self):
        from repro.sim.trace import RingTracer

        t = RingTracer(capacity=4)
        for i in range(4):
            t.emit(i, f"k{i}")
        assert len(t.recent()) == 4
        tail = t.recent(2)
        assert len(tail) == 2
        assert "k2" in tail[0] and "k3" in tail[1]

    def test_recent_n_larger_than_retained(self):
        from repro.sim.trace import RingTracer

        t = RingTracer(capacity=8)
        t.emit(0, "only")
        assert len(t.recent(100)) == 1

    def test_clear_and_reuse(self):
        from repro.sim.trace import RingTracer

        t = RingTracer(capacity=3)
        t.emit(0, "a")
        t.clear()
        assert len(t) == 0
        t.emit(1, "b")
        assert [r.kind for r in t] == ["b"]

    def test_prefix_filter_applies(self):
        from repro.sim.trace import RingTracer

        t = RingTracer(capacity=8, kinds={"migration.*"})
        t.emit(0, "migration.start")
        t.emit(0, "move.granted")
        assert [r.kind for r in t] == ["migration.start"]
