"""Unit tests for the thrashing guard (transient fixing, §2.2)."""

import pytest

from repro.core.moveblock import MoveBlock
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.guard import ThrashingGuard
from repro.core.policies.registry import make_policy
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem
from repro.sim.trace import Tracer


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
        tracer=Tracer(),
    )


@pytest.fixture
def guard(system):
    return ThrashingGuard(
        ConventionalMigration(system),
        max_migrations=2,
        window=100.0,
        cooldown=50.0,
    )


def do_move(system, policy, client_node, server):
    block = MoveBlock(client_node, server)

    def proc(env):
        yield from policy.move(block)
        yield from policy.end(block)

    system.env.process(proc(system.env))
    system.env.run()
    return block


class TestGuard:
    def test_validation(self, system):
        inner = ConventionalMigration(system)
        with pytest.raises(ValueError):
            ThrashingGuard(inner, max_migrations=0)
        with pytest.raises(ValueError):
            ThrashingGuard(inner, window=0)
        with pytest.raises(ValueError):
            ThrashingGuard(inner, cooldown=-1)

    def test_delegates_below_threshold(self, system, guard):
        server = system.create_server(node=3)
        b1 = do_move(system, guard, 0, server)
        b2 = do_move(system, guard, 1, server)
        assert b1.granted and b2.granted
        assert server.node_id == 1
        assert not guard.is_pinned(server)
        assert guard.guard_rejections == 0

    def test_pins_after_threshold(self, system, guard):
        server = system.create_server(node=3)
        for node in (0, 1, 2):  # third grant exceeds max_migrations=2
            do_move(system, guard, node, server)
        assert guard.is_pinned(server)
        blocked = do_move(system, guard, 0, server)
        assert not blocked.granted
        assert server.node_id == 2  # stayed where it was pinned
        assert guard.guard_rejections == 1
        assert system.tracer.count("guard.pinned") == 1

    def test_cooldown_expires(self, system, guard):
        server = system.create_server(node=3)
        for node in (0, 1, 2):
            do_move(system, guard, node, server)
        assert guard.is_pinned(server)
        # Let the cooldown elapse...
        system.env.timeout(200.0)
        system.env.run()
        assert not guard.is_pinned(server)
        after = do_move(system, guard, 0, server)
        assert after.granted
        assert server.node_id == 0

    def test_window_prunes_old_grants(self, system):
        guard = ThrashingGuard(
            ConventionalMigration(system),
            max_migrations=2,
            window=10.0,  # short window: old grants age out
            cooldown=50.0,
        )
        server = system.create_server(node=3)
        do_move(system, guard, 0, server)
        system.env.timeout(100.0)
        system.env.run()
        do_move(system, guard, 1, server)
        system.env.timeout(100.0)
        system.env.run()
        do_move(system, guard, 2, server)
        # Grants were spread far apart: never more than 1 per window.
        assert not guard.is_pinned(server)

    def test_co_located_mover_still_counts_granted(self, system, guard):
        server = system.create_server(node=3)
        for node in (0, 1, 2):
            do_move(system, guard, node, server)
        pinned = do_move(system, guard, 2, server)  # object IS at 2
        assert pinned.granted  # co-located: effectively granted
        assert guard.guard_rejections == 1

    def test_stats_merge_inner(self, system, guard):
        server = system.create_server(node=3)
        do_move(system, guard, 0, server)
        stats = guard.stats()
        assert stats["policy"] == "guarded(migration)"
        assert stats["moves_granted"] == 1
        assert "guard_rejections" in stats

    def test_registry_prefix(self, system):
        policy = make_policy("guarded:placement", system)
        assert isinstance(policy, ThrashingGuard)
        assert policy.inner.name == "placement"

    def test_registry_unknown_base(self, system):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("guarded:teleport", system)
