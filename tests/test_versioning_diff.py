"""Content hashing: determinism, sensitivity, and the two digests.

The deploy protocol's safety story rests on the hash layer: a version
flip must change exactly one leaf, a rollback must restore the root
digest bit-identically, and nothing that changes with *traffic* (as
opposed to *version*) may leak into a hash.
"""

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager
from repro.runtime.system import DistributedSystem
from repro.versioning.diff import (
    GraphSnapshot,
    compute_graph_digest,
    compute_node_content_hash,
    compute_object_hash,
    object_version_record,
    snapshot_graph,
)


def small_system(nodes=3, servers=4):
    system = DistributedSystem(nodes=nodes, seed=0)
    objs = [
        system.create_server(i % nodes, name=f"s{i}") for i in range(servers)
    ]
    return system, objs


class TestObjectRecords:
    def test_record_is_deterministic(self):
        _, objs = small_system()
        a = object_version_record(objs[0])
        b = object_version_record(objs[0])
        assert a == b
        assert compute_object_hash(a) == compute_object_hash(b)

    def test_version_override_changes_hash_only_via_version(self):
        _, objs = small_system()
        base = object_version_record(objs[0])
        overridden = object_version_record(objs[0], version="v1")
        assert base["version"] == "v0"
        assert overridden["version"] == "v1"
        assert {k: v for k, v in base.items() if k != "version"} == {
            k: v for k, v in overridden.items() if k != "version"
        }
        assert compute_object_hash(base) != compute_object_hash(overridden)

    def test_attachments_and_alliances_enter_the_hash(self):
        _, objs = small_system()
        attachments = AttachmentManager()
        bare = compute_object_hash(object_version_record(objs[0], attachments))
        attachments.attach(objs[0], objs[1])
        attached = compute_object_hash(
            object_version_record(objs[0], attachments)
        )
        assert bare != attached

        alliances = AllianceManager()
        ring = alliances.create("ring")
        solo = compute_object_hash(
            object_version_record(objs[2], alliances=alliances)
        )
        ring.admit(objs[2])
        allied = compute_object_hash(
            object_version_record(objs[2], alliances=alliances)
        )
        assert solo != allied

    def test_policy_config_enters_the_hash(self):
        _, objs = small_system()
        a = compute_object_hash(
            object_version_record(objs[0], policy_config={"lease": "30"})
        )
        b = compute_object_hash(
            object_version_record(objs[0], policy_config={"lease": "60"})
        )
        assert a != b

    def test_runtime_bookkeeping_is_excluded(self):
        # Migration counters change with traffic, not with version.
        _, objs = small_system()
        before = compute_object_hash(object_version_record(objs[0]))
        objs[0].migration_count += 1
        objs[0].invocation_count += 3
        after = compute_object_hash(object_version_record(objs[0]))
        assert before == after


class TestDigests:
    def test_single_flip_changes_exactly_one_leaf(self):
        system, objs = small_system()
        before = snapshot_graph(system)
        objs[1].version = "v1"
        after = snapshot_graph(system)
        assert before.diff(after) == [objs[1].object_id]
        assert before.root_digest != after.root_digest

    def test_flip_and_restore_is_bit_identical(self):
        system, objs = small_system()
        before = snapshot_graph(system)
        objs[1].version = "v1"
        objs[1].version = "v0"
        after = snapshot_graph(system)
        assert before.diff(after) == []
        assert before.root_digest == after.root_digest
        assert before.placement_digest == after.placement_digest

    def test_root_digest_is_placement_independent(self):
        system, objs = small_system()
        before = snapshot_graph(system)
        # Relocate an object without touching any version tag.
        system.registry.depart(objs[0])
        system.registry.arrive(objs[0], (objs[0].node_id + 1) % 3)
        after = snapshot_graph(system)
        assert before.root_digest == after.root_digest
        assert before.placement_digest != after.placement_digest

    def test_node_hash_covers_exactly_the_residents(self):
        system, objs = small_system(nodes=3, servers=4)
        h0 = compute_node_content_hash(system, 0)
        assert h0 == compute_node_content_hash(system, 0)
        # Node 1 hosts different residents, so it hashes differently.
        assert h0 != compute_node_content_hash(system, 1)
        # A version flip on a node-0 resident changes only node 0.
        h1 = compute_node_content_hash(system, 1)
        objs[0].version = "v9"
        assert compute_node_content_hash(system, 0) != h0
        assert compute_node_content_hash(system, 1) == h1

    def test_graph_digest_key_order_is_irrelevant(self):
        hashes = {1: "aa", 2: "bb", 3: "cc"}
        shuffled = {3: "cc", 1: "aa", 2: "bb"}
        assert compute_graph_digest(hashes) == compute_graph_digest(shuffled)


class TestSnapshotSerialization:
    def test_snapshot_round_trips_to_dict(self):
        system, _ = small_system()
        snap = snapshot_graph(system)
        clone = GraphSnapshot.from_dict(snap.to_dict())
        assert clone.object_hashes == snap.object_hashes
        assert clone.object_versions == snap.object_versions
        assert clone.node_hashes == snap.node_hashes
        assert clone.root_digest == snap.root_digest
        assert clone.placement_digest == snap.placement_digest
        assert clone.diff(snap) == []

    def test_diff_counts_missing_objects_as_changed(self):
        system, objs = small_system()
        snap = snapshot_graph(system)
        extra = system.create_server(0, name="late")
        later = snapshot_graph(system)
        assert snap.diff(later) == [extra.object_id]
