"""Unit tests for move-block accounting."""

import pytest

from repro.core.moveblock import MoveBlock
from repro.runtime.objects import DistributedObject


@pytest.fixture
def target(env):
    return DistributedObject(env, object_id=1, node_id=2)


class TestMoveBlock:
    def test_initial_state(self, target):
        block = MoveBlock(client_node=0, target=target)
        assert block.call_count == 0
        assert not block.ended
        assert not block.granted
        assert block.alliance is None

    def test_unique_ids(self, target):
        b1 = MoveBlock(0, target)
        b2 = MoveBlock(0, target)
        assert b1.block_id != b2.block_id

    def test_record_call(self, target):
        block = MoveBlock(0, target)
        block.record_call(1.5)
        block.record_call(0.5)
        assert block.call_count == 2
        assert block.total_call_time == pytest.approx(2.0)

    def test_per_call_observations_amortize_migration(self, target):
        block = MoveBlock(0, target)
        block.migration_cost = 6.0
        for d in (1.0, 2.0, 3.0):
            block.record_call(d)
        obs = block.per_call_observations()
        assert obs == pytest.approx([3.0, 4.0, 5.0])
        # Mean of observations == mean duration + cost/N.
        assert sum(obs) / 3 == pytest.approx(2.0 + 2.0)

    def test_empty_block_yields_no_observations(self, target):
        block = MoveBlock(0, target)
        block.migration_cost = 6.0
        assert block.per_call_observations() == []

    def test_repr_states(self, target):
        block = MoveBlock(0, target)
        assert "open" in repr(block)
        block.ended_at = 10.0
        assert block.ended
        assert "ended" in repr(block)
