"""Smoke tests: the fast deterministic examples must stay runnable.

The longer statistical examples (office_automation, hotspot_analysis,
policy_playground, replication_outlook) are exercised through the same
library calls by the integration suites; the two deterministic ones are
cheap enough to run end-to-end as subprocesses here so the example code
itself cannot rot.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestDeterministicExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "conventional migration" in out
        assert "transient placement" in out
        # The headline: placement's scenario ends earlier.
        assert "finished at t=21.0" in out
        assert "finished at t=15.0" in out

    def test_factory_scheduling(self):
        out = run_example("factory_scheduling.py")
        assert "schedule moved 4 times" in out  # conventional ping-pong
        assert "schedule moved 1 times" in out  # placement stability
        assert "placement finished" in out

    def test_alliance_distribution(self):
        out = run_example("alliance_distribution.py")
        assert "spread" in out
        assert "collocate" in out
        assert "anchor" in out
        assert "cuts batch latency" in out


class TestAllExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "office_automation.py",
            "hotspot_analysis.py",
            "policy_playground.py",
            "factory_scheduling.py",
            "replication_outlook.py",
            "alliance_distribution.py",
        ],
    )
    def test_present_and_importable_syntax(self, name):
        path = EXAMPLES / name
        assert path.exists()
        compile(path.read_text(), str(path), "exec")  # syntax check
