"""Property tests for lock-lease safety under crash/expiry interleavings.

Random interleavings of lock grants, releases, time advances, node
crashes/recoveries and sweeps must preserve the two lease invariants:

* *mutual exclusion* — no object is ever held by two blocks at once;
* *reclamation* — after a sweep, no lock is held by a block whose
  lease expired or whose owner node is crashed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locking import LeaseSweeper, LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment

N_OBJECTS = 4
N_NODES = 3
LEASE = 20.0

op = st.one_of(
    st.tuples(
        st.just("advance"),
        st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    ),
    st.tuples(
        st.just("lock"),
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
    ),
    st.tuples(st.just("end"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("crash"), st.integers(min_value=0, max_value=N_NODES - 1)),
    st.tuples(st.just("recover"), st.integers(min_value=0, max_value=N_NODES - 1)),
    st.tuples(st.just("sweep")),
)


class Health:
    def __init__(self):
        self.down = set()

    def is_down(self, node_id):
        return node_id in self.down


def check_mutual_exclusion(locks, objects):
    locks.check_invariant()
    held = locks.locked_objects()
    assert len(held) == len(set(held))
    for obj in objects:
        holder = obj.lock_holder
        if holder is not None:
            assert obj in locks._held.get(holder.block_id, [])


@settings(max_examples=200, deadline=None)
@given(st.lists(op, max_size=60))
def test_lease_invariants_hold_under_random_interleavings(ops):
    env = Environment()
    locks = LockManager(env=env, lease_duration=LEASE)
    health = Health()
    sweeper = LeaseSweeper(env, locks, health=health)
    objects = [
        DistributedObject(env, object_id=i, node_id=0, name=f"o{i}")
        for i in range(N_OBJECTS)
    ]
    blocks = []

    for action in ops:
        kind = action[0]
        if kind == "advance":
            env.timeout(action[1])
            env.run()
        elif kind == "lock":
            obj, node = objects[action[1]], action[2]
            block = MoveBlock(node, obj)
            if locks.is_locked(obj):
                # A live holder always rejects a conflicting grant.
                try:
                    locks.lock(obj, block)
                    raise AssertionError("double grant succeeded")
                except PolicyError:
                    pass
            else:
                locks.lock(obj, block)
                blocks.append(block)
        elif kind == "end":
            if blocks:
                # Ending any block (even one already reclaimed) is safe.
                locks.release_block(blocks[action[1] % len(blocks)])
        elif kind == "crash":
            health.down.add(action[1])
        elif kind == "recover":
            health.down.discard(action[1])
        else:  # sweep
            sweeper.sweep()
        check_mutual_exclusion(locks, objects)

    # Reclamation: one final sweep leaves no lock held by an expired
    # lease or a crashed holder.
    sweeper.sweep()
    for block in locks.held_blocks():
        assert not health.is_down(block.client_node)
        assert locks.lease_of(block) > env.now
    check_mutual_exclusion(locks, objects)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_every_lease_of_a_crashed_holder_is_eventually_released(gaps):
    """A holder that crashes right after locking never survives the
    lease horizon: whatever the advance pattern, once the lease ran out
    any touch (or sweep) reclaims every one of its locks."""
    env = Environment()
    locks = LockManager(env=env, lease_duration=LEASE)
    health = Health()
    obj = DistributedObject(env, object_id=0, node_id=0, name="o")
    block = MoveBlock(1, obj)
    locks.lock(obj, block)
    health.down.add(1)

    for gap in gaps:
        env.timeout(gap)
        env.run()
    if sum(gaps) < LEASE:
        # Push clearly past the lease horizon (robust to fp rounding).
        env.timeout(LEASE - sum(gaps) + 1.0)
        env.run()

    # Either path — lazy touch or eager sweep — must reclaim it now.
    assert not locks.is_locked(obj)
    assert obj.lock_holder is None
    assert locks.leases_expired == 1
