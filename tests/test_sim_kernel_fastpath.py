"""Fast-path kernel guarantees: golden trace, urgent lane, sleep pool.

The kernel's hot-loop optimizations (URGENT deque, inlined run loop,
pooled sleep events) must never change the ``(time, priority,
sequence)`` total order.  The golden trace below was recorded on the
pre-fast-path heap-only kernel and is asserted verbatim: any reordering
— however subtle — fails this file before it can corrupt an experiment.
"""

import pytest

from repro.errors import EmptySchedule, Interrupt
from repro.sim.events import NORMAL, Sleep, Timeout, URGENT
from repro.sim.kernel import Environment, Infinity

#: Recorded on the heap-only kernel (commit 80a4644); (time, label) per
#: observable action of the scripted scenario below.
GOLDEN_TRACE = [
    (0.0, "zd.z0"), (0.0, "zd.z1"), (0.0, "zd.z2"), (0.0, "zd.z3"),
    (0.0, "zd.z4"), (1.0, "w0.0"), (1.5, "w1.0"), (2.0, "w2.0"),
    (2.0, "w0.1"), (2.5, "w3.0"), (3.0, "w1.1"), (3.0, "w0.2"),
    (4.0, "w2.1"), (4.0, "w0.3"), (4.5, "w1.2"), (5.0, "w3.1"),
    (5.0, "w0.4"), (5.0, "allof.2"), (6.0, "w2.2"), (6.0, "w1.3"),
    (6.0, "w0.5"), (6.0, "anyof.1"), (7.0, "fired-interrupt"),
    (7.0, "interrupted.Interrupt"), (7.5, "w3.2"), (7.5, "w1.4"),
    (8.0, "w2.3"), (9.0, "post-interrupt"), (9.0, "w1.5"),
    (10.0, "w3.3"), (10.0, "w2.4"), (12.0, "w2.5"), (12.5, "w3.4"),
    (15.0, "w3.5"),
]


def _golden_scenario(env, trace):
    """Processes, equal-time timeouts, interrupts and conditions."""

    def worker(name, period, n):
        for i in range(n):
            yield env.timeout(period)
            trace.append((env.now, f"{name}.{i}"))

    def zero_delay(name):
        for i in range(5):
            yield env.timeout(0)
            trace.append((env.now, f"{name}.z{i}"))

    def condition_user():
        t1, t2 = env.timeout(3), env.timeout(5)
        res = yield t1 & t2
        trace.append((env.now, f"allof.{len(res)}"))
        r2 = yield env.timeout(1) | env.timeout(9)
        trace.append((env.now, f"anyof.{len(r2)}"))

    def interruptee():
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append((env.now, "interrupted.Interrupt"))
        yield env.timeout(2)
        trace.append((env.now, "post-interrupt"))

    def interrupter(victim):
        yield env.timeout(7)
        victim.interrupt("now")
        trace.append((env.now, "fired-interrupt"))

    for i in range(4):
        env.process(worker(f"w{i}", 1.0 + i * 0.5, 6), name=f"w{i}")
    env.process(zero_delay("zd"))
    env.process(condition_user())
    victim = env.process(interruptee())
    env.process(interrupter(victim))


class TestGoldenTrace:
    def test_event_order_matches_heap_only_kernel(self):
        trace = []
        env = Environment()
        _golden_scenario(env, trace)
        env.run()
        assert trace == GOLDEN_TRACE
        assert env.now == 100.0

    def test_stepping_manually_matches_run(self):
        """step() and the inlined run() loop share one total order."""
        trace = []
        env = Environment()
        _golden_scenario(env, trace)
        with pytest.raises(EmptySchedule):
            while True:
                env.step()
        assert trace == GOLDEN_TRACE


class TestUrgentLane:
    def test_urgent_beats_normal_at_same_time(self):
        env = Environment()
        order = []
        normal = env.event()
        urgent = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent.callbacks.append(lambda e: order.append("urgent"))
        normal._ok = urgent._ok = True
        normal._value = urgent._value = None
        env.schedule(normal, priority=NORMAL)
        env.schedule(urgent, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_urgent_lane_is_fifo(self):
        env = Environment()
        order = []
        for i in range(5):
            ev = env.event()
            ev._ok, ev._value = True, None
            ev.callbacks.append(lambda e, i=i: order.append(i))
            env.schedule(ev, priority=URGENT)
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_earlier_heaped_urgent_beats_later_deque_urgent(self):
        """A delayed URGENT event still in the heap must precede a
        zero-delay URGENT deque entry created at the same instant,
        because its sequence number is smaller."""
        env = Environment()
        order = []

        def heaped(label):
            ev = env.event()
            ev._ok, ev._value = True, None
            ev.callbacks.append(lambda e: order.append(label))
            env.schedule(ev, priority=URGENT, delay=5.0)
            return ev

        first = heaped("heaped-first")
        heaped("heaped-second")

        def spawn_deque(event):
            # While heaped-second is still in the heap, push a
            # zero-delay URGENT entry onto the fast lane.
            immediate = env.event()
            immediate._ok, immediate._value = True, None
            immediate.callbacks.append(lambda e: order.append("deque-urgent"))
            env.schedule(immediate, priority=URGENT)

        first.callbacks.insert(0, spawn_deque)
        env.run()
        assert order == ["heaped-first", "heaped-second", "deque-urgent"]

    def test_peek_and_len_include_urgent_lane(self):
        env = Environment()
        assert env.peek() == Infinity
        assert len(env) == 0
        ev = env.event()
        ev._ok, ev._value = True, None
        env.schedule(ev, priority=URGENT)
        env.timeout(3.0)
        assert env.peek() == 0.0
        assert len(env) == 2
        env.step()  # urgent event
        assert env.peek() == 3.0
        assert len(env) == 1


class TestSleep:
    def test_sleep_behaves_like_timeout(self):
        env = Environment()
        log = []

        def proc(env):
            value = yield env.sleep(2.5, "payload")
            log.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert log == [(2.5, "payload")]

    def test_negative_delay_rejected_fresh_and_pooled(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.sleep(-1.0)

        def proc(env):
            yield env.sleep(1.0)  # populates the pool once processed

        env.process(proc(env))
        env.run()
        with pytest.raises(ValueError):
            env.sleep(-1.0)

    def test_sleep_events_are_recycled(self):
        # An event is recycled only after its callbacks finish, so the
        # second sleep is freshly allocated and the *third* reuses the
        # first's storage.
        env = Environment()
        seen = []

        def proc(env):
            for _ in range(3):
                ev = env.sleep(1.0)
                seen.append(ev)
                yield ev

        env.process(proc(env))
        env.run()
        assert seen[2] is seen[0]
        assert all(isinstance(ev, Sleep) for ev in seen)
        assert all(isinstance(ev, Timeout) for ev in seen)

    def test_recycled_sleep_carries_fresh_state(self):
        env = Environment()
        values = []

        def proc(env):
            values.append((yield env.sleep(1.0, "a")))
            values.append((yield env.sleep(0.0, "b")))
            values.append((yield env.sleep(2.0)))

        env.process(proc(env))
        env.run()
        assert values == ["a", "b", None]
        assert env.now == 3.0

    def test_sleep_interleaves_identically_to_timeout(self):
        """Replacing timeout with sleep must not reorder anything."""

        def scenario(wait):
            env = Environment()
            trace = []

            def worker(name, period):
                for i in range(20):
                    yield wait(env, period)
                    trace.append((env.now, f"{name}.{i}"))

            for i in range(5):
                env.process(worker(f"p{i}", 1.0 + 0.25 * i), name=f"p{i}")
            env.run()
            return trace

        with_timeout = scenario(lambda env, d: env.timeout(d))
        with_sleep = scenario(lambda env, d: env.sleep(d))
        assert with_sleep == with_timeout
