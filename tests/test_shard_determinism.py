"""Determinism and statistical-validity guards for the sharded kernel.

The contract (ISSUE 7):

* ``shards == 1`` is *bit-identical* to the unsharded kernel — metrics
  and golden trace, equality on floats;
* the same seed + the same plan reproduce the merged result exactly,
  on either backend (inline vs worker processes) and for any worker
  grouping;
* different shard counts are different simulations (different RNG
  partitions) but must agree statistically — same workload, same
  expectations;
* the cross-shard round trip has a closed-form mean
  ``2*(base + mean_latency) + 1`` the measured mean must approach.
"""

import json

import pytest

from repro.experiments.persistence import params_to_dict
from repro.sim.shard.mp import ProcessShardHost
from repro.sim.shard.partition import ShardPlan
from repro.sim.shard.runner import merge_traces, run_sharded_cell
from repro.sim.shard.sync import ConservativeWindowSync, LocalShardHost
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell
from repro.workload.params import SimulationParameters

FAST = StoppingConfig.fast()

#: Loose-but-quick rule for the multi-backend comparisons.
TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)


def make_params(**overrides):
    defaults = dict(nodes=8, clients=8, servers_layer1=4, seed=42)
    defaults.update(overrides)
    return SimulationParameters(**defaults)


def _fingerprint(result):
    """Canonical serialization of everything a sharded result reports.

    ``barrier_wait_s`` is wall-clock (host timing, not simulation
    state), so it is the one field excluded from the bit-identity
    check.
    """
    raw = json.loads(json.dumps(result.raw))  # deep copy
    if "sync" in raw:
        raw["sync"].pop("barrier_wait_s", None)
    document = {
        "params": params_to_dict(result.params),
        "mean_communication_time_per_call": (
            result.mean_communication_time_per_call
        ),
        "mean_call_duration": result.mean_call_duration,
        "mean_migration_time_per_call": result.mean_migration_time_per_call,
        "simulated_time": result.simulated_time,
        "raw": raw,
        "shards": result.shards,
        "windows": result.windows,
    }
    return json.dumps(document, sort_keys=True)


#: Trace detail keys whose values are process-global MoveBlock ids.
_BLOCK_ID_KEYS = frozenset({"block", "holder"})


def _trace_fingerprint(records):
    """Trace identity modulo the process-global move-block counter.

    ``MoveBlock`` ids come from an interpreter-wide counter, so two
    runs in the same process (or different worker processes) disagree
    on the absolute ids while the event sequence is identical.  Those
    ids are renumbered by first appearance, which preserves the
    identity *structure* (which events concern the same block) while
    ignoring the counter offset.
    """
    remap = {}

    def canon(value):
        if value not in remap:
            remap[value] = len(remap)
        return remap[value]

    out = []
    for r in records:
        detail = tuple(
            (k, canon(v) if k in _BLOCK_ID_KEYS else v)
            for k, v in sorted(r.detail.items())
        )
        out.append((r.time, r.kind, detail))
    return out


class TestSingleShardDelegation:
    """``--shards 1`` must be the existing kernel, bit for bit."""

    def test_metrics_bit_identical_to_run_cell(self):
        params = make_params()
        baseline = run_cell(params, stopping=FAST)
        sharded = run_sharded_cell(params, 1, FAST)
        assert sharded.backend == "single"
        assert sharded.mean_communication_time_per_call == (
            baseline.mean_communication_time_per_call
        )
        assert sharded.mean_call_duration == baseline.mean_call_duration
        assert sharded.mean_migration_time_per_call == (
            baseline.mean_migration_time_per_call
        )
        assert sharded.simulated_time == baseline.simulated_time
        assert sharded.raw == baseline.raw

    def test_trace_bit_identical_to_run_cell(self):
        from repro.sim.trace import Tracer

        params = make_params(clients=4)
        tracer = Tracer()
        run_cell(params, stopping=TINY, tracer=tracer)
        sharded = run_sharded_cell(params, 1, TINY, trace=True)
        assert _trace_fingerprint(sharded.trace_records) == (
            _trace_fingerprint(tracer.records)
        )
        assert len(sharded.trace_records) > 0


class TestSameSeedSamePartition:
    def test_repeated_inline_runs_bit_identical(self):
        params = make_params()
        a = run_sharded_cell(params, 2, FAST, backend="inline")
        b = run_sharded_cell(params, 2, FAST, backend="inline")
        assert _fingerprint(a) == _fingerprint(b)

    def test_repeated_runs_merge_identical_traces(self):
        params = make_params(clients=4)
        a = run_sharded_cell(params, 2, TINY, backend="inline", trace=True)
        b = run_sharded_cell(params, 2, TINY, backend="inline", trace=True)
        assert len(a.trace_records) > 0
        assert _trace_fingerprint(a.trace_records) == (
            _trace_fingerprint(b.trace_records)
        )

    def test_merged_trace_is_in_canonical_order(self):
        params = make_params(clients=4)
        result = run_sharded_cell(
            params, 2, TINY, backend="inline", trace=True
        )
        times = [r.time for r in result.trace_records]
        assert times == sorted(times)


class TestBackendEquivalence:
    """Inline and multiprocess backends run the identical protocol."""

    def test_inline_vs_process_bit_identical(self):
        params = make_params()
        inline = run_sharded_cell(params, 2, FAST, backend="inline")
        process = run_sharded_cell(
            params, 2, FAST, backend="process", workers=2
        )
        assert inline.backend == "inline"
        assert process.backend == "process"
        assert inline.mean_communication_time_per_call == (
            process.mean_communication_time_per_call
        )
        assert inline.raw["calls"] == process.raw["calls"]
        assert inline.raw["remote"] == process.raw["remote"]
        assert inline.raw["per_shard"] == process.raw["per_shard"]

    def test_worker_grouping_does_not_change_results(self):
        """4 shards on 1, 2 and 4 workers: identical merged output."""
        params = make_params()
        plan = ShardPlan(params=params, shards=4, remote_fraction=0.1)

        def run_with_hosts(make_hosts):
            hosts = make_hosts()
            try:
                sync = ConservativeWindowSync(plan, hosts)
                outcomes = sync.run()
            finally:
                for host in hosts:
                    host.close()
            return [
                (o.shard_id, o.metrics.summary(), o.router_stats)
                for o in outcomes
            ]

        inline = run_with_hosts(
            lambda: [LocalShardHost(plan, range(4), stopping=TINY)]
        )
        two_workers = run_with_hosts(
            lambda: [
                ProcessShardHost(plan, [0, 2], stopping=TINY),
                ProcessShardHost(plan, [1, 3], stopping=TINY),
            ]
        )
        assert inline == two_workers


class TestStatisticalValidity:
    def test_remote_round_trip_matches_closed_form(self):
        plan = ShardPlan(
            params=make_params(clients=16, nodes=16, servers_layer1=8),
            shards=2,
            remote_fraction=0.3,
            base_latency=2.0,
            remote_mean_latency=1.0,
        )
        result = run_sharded_cell(plan, stopping=FAST, backend="inline")
        remote = result.raw["remote"]
        assert remote["calls"] > 500
        expected = plan.expected_remote_call_duration
        assert remote["mean_round_trip"] == pytest.approx(expected, rel=0.10)

    def test_shard_counts_agree_statistically(self):
        """2 vs 4 shards: different RNG partitions, same expectations.

        With ``remote_fraction=0`` every shard is an independent copy
        of the same client/server density, so the merged mean must sit
        near the unsharded mean regardless of the partition.
        """
        params = make_params(clients=16, nodes=16, servers_layer1=8)
        reference = run_cell(params, stopping=FAST)
        ref = reference.mean_communication_time_per_call
        for shards in (2, 4):
            result = run_sharded_cell(
                params, shards, FAST, remote_fraction=0.0, backend="inline"
            )
            assert result.mean_communication_time_per_call == pytest.approx(
                ref, rel=0.25
            ), shards

    def test_telemetry_does_not_perturb_results(self):
        from repro.telemetry.core import Telemetry

        params = make_params()
        plain = run_sharded_cell(params, 2, FAST, backend="inline")
        instrumented = run_sharded_cell(
            params, 2, FAST, backend="inline", telemetry=Telemetry()
        )
        assert _fingerprint(plain) == _fingerprint(instrumented)

    def test_hotspot_smoke_matches_downscaled_reference(self):
        """The CI smoke: a small hot-spot run with sane aggregates."""
        from repro.sim.shard.hotspot import run_hotspot

        result = run_hotspot(2, scale=0.001, backend="inline", stopping=TINY)
        assert result.shards == 2
        assert result.raw["calls"] > 0
        assert result.raw["remote"]["calls"] > 0
        expected = result.raw["remote"]["expected_round_trip"]
        assert result.raw["remote"]["mean_round_trip"] == pytest.approx(
            expected, rel=0.25
        )
