"""Unit + integration tests for the fragmentation study (§5 outlook)."""

import pytest

from repro.errors import ConfigurationError
from repro.fragmentation import (
    FragmentationParameters,
    FragmentationWorkload,
    run_fragmentation_cell,
)
from repro.sim.stopping import StoppingConfig

TINY = StoppingConfig(
    relative_precision=0.2,
    confidence=0.9,
    batch_size=50,
    warmup=50,
    min_batches=3,
    max_observations=3_000,
)


class TestParameters:
    def test_defaults_valid(self):
        FragmentationParameters().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"clients": 0},
            {"logical_objects": 0},
            {"fragments_per_object": 0},
            {"touched_fraction": 0.0},
            {"touched_fraction": 1.5},
            {"migration_duration": -1},
            {"mean_calls_per_block": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FragmentationParameters(**kwargs).validate()

    def test_touched_count_rounds_up(self):
        p = FragmentationParameters(
            fragments_per_object=4, touched_fraction=0.3
        )
        assert p.touched_count == 2  # ceil(1.2)

    def test_touched_count_at_least_one(self):
        p = FragmentationParameters(
            fragments_per_object=1, touched_fraction=0.1
        )
        assert p.touched_count == 1


class TestStructure:
    def test_fragments_split_state(self):
        w = FragmentationWorkload(
            FragmentationParameters(
                logical_objects=2, fragments_per_object=4
            )
        )
        assert len(w.fragments) == 2
        for frags in w.fragments.values():
            assert len(frags) == 4
            assert all(f.size == pytest.approx(0.25) for f in frags)

    def test_k1_is_monolithic(self):
        w = FragmentationWorkload(
            FragmentationParameters(fragments_per_object=1)
        )
        for frags in w.fragments.values():
            assert len(frags) == 1
            assert frags[0].size == 1.0

    def test_fragment_transfer_time_scaled(self):
        w = FragmentationWorkload(
            FragmentationParameters(
                fragments_per_object=4, migration_duration=6.0
            )
        )
        fragment = w.fragments[0][0]
        assert w.system.migrations.duration_for(fragment) == pytest.approx(1.5)


class TestExecution:
    def test_cell_runs(self):
        result = run_fragmentation_cell(
            FragmentationParameters(
                policy="placement", clients=4, fragments_per_object=2, seed=1
            ),
            stopping=TINY,
        )
        assert result.mean_communication_time_per_call > 0
        assert result.raw["metrics"]["blocks"] > 0
        assert result.raw["migrations"] > 0

    def test_reproducible(self):
        params = FragmentationParameters(policy="migration", seed=9)
        a = run_fragmentation_cell(params, stopping=TINY)
        b = run_fragmentation_cell(params, stopping=TINY)
        assert (
            a.mean_communication_time_per_call
            == b.mean_communication_time_per_call
        )

    def test_registry_consistent_after_run(self):
        w = FragmentationWorkload(
            FragmentationParameters(policy="migration", clients=6, seed=2),
            stopping=TINY,
        )
        w.run()
        w.system.registry.check_consistency()

    def test_finer_fragments_reduce_conflict_cost(self):
        """The outlook's core claim at test scale."""
        coarse = run_fragmentation_cell(
            FragmentationParameters(
                policy="migration", clients=12, fragments_per_object=1, seed=3
            ),
            stopping=TINY,
        )
        fine = run_fragmentation_cell(
            FragmentationParameters(
                policy="migration", clients=12, fragments_per_object=4, seed=3
            ),
            stopping=TINY,
        )
        assert (
            fine.mean_communication_time_per_call
            < coarse.mean_communication_time_per_call
        )
