"""Unit tests for the named random-stream factory."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams, Stream


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.exponential(1) for _ in range(5)] == [
            b.exponential(1) for _ in range(5)
        ]

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        xs = [streams.stream("x").exponential(1) for _ in range(5)]
        ys = [streams.stream("y").exponential(1) for _ in range(5)]
        assert xs != ys

    def test_stream_is_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(3)
        s1.stream("a")
        x1 = s1.stream("b").exponential(1)

        s2 = RandomStreams(3)
        x2 = s2.stream("b").exponential(1)  # no "a" created first
        assert x1 == x2

    def test_bulk_streams(self):
        streams = RandomStreams(0).streams(["a", "b"])
        assert set(streams) == {"a", "b"}
        assert all(isinstance(s, Stream) for s in streams.values())


class TestStreamDraws:
    def test_exponential_mean(self):
        stream = RandomStreams(42).stream("exp")
        draws = [stream.exponential(3.0) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(3.0, rel=0.05)

    def test_exponential_zero_mean_is_zero(self):
        stream = RandomStreams(0).stream("z")
        assert stream.exponential(0) == 0.0

    def test_exponential_negative_mean_rejected(self):
        stream = RandomStreams(0).stream("n")
        with pytest.raises(ValueError):
            stream.exponential(-1)

    def test_uniform_bounds(self):
        stream = RandomStreams(1).stream("u")
        draws = [stream.uniform(2, 5) for _ in range(1000)]
        assert all(2 <= d < 5 for d in draws)

    def test_integer_bounds(self):
        stream = RandomStreams(1).stream("i")
        draws = [stream.integer(0, 3) for _ in range(300)]
        assert set(draws) == {0, 1, 2}

    def test_choice_uniformity(self):
        stream = RandomStreams(9).stream("c")
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(3000):
            counts[stream.choice(["a", "b", "c"])] += 1
        for v in counts.values():
            assert v == pytest.approx(1000, rel=0.15)

    def test_choice_empty_rejected(self):
        stream = RandomStreams(0).stream("e")
        with pytest.raises(ValueError):
            stream.choice([])

    def test_geometric_at_least_one_floor(self):
        stream = RandomStreams(5).stream("g")
        draws = [stream.geometric_at_least_one(0.01) for _ in range(100)]
        assert all(d >= 1 for d in draws)

    def test_geometric_at_least_one_mean_preserved(self):
        stream = RandomStreams(5).stream("g2")
        draws = [stream.geometric_at_least_one(8.0) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(8.0, rel=0.05)

    def test_shuffle_permutes_in_place(self):
        stream = RandomStreams(11).stream("s")
        items = list(range(20))
        original = list(items)
        stream.shuffle(items)
        assert sorted(items) == original
        assert items != original  # vanishingly unlikely to be identity
