"""Unit tests for the simulation environment (clock + calendar)."""

import pytest

from repro.errors import EmptySchedule
from repro.sim.kernel import Environment, Infinity


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=100).now == 100.0

    def test_peek_empty_is_infinity(self, env):
        assert env.peek() == Infinity

    def test_peek_returns_next_event_time(self, env):
        env.timeout(9)
        env.timeout(3)
        assert env.peek() == 3

    def test_len_counts_scheduled_events(self, env):
        env.timeout(1)
        env.timeout(2)
        assert len(env) == 2

    def test_step_advances_clock(self, env):
        env.timeout(5)
        env.step()
        assert env.now == 5

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_time(self, env):
        env.timeout(10)
        env.run(until=4)
        assert env.now == 4
        assert len(env) == 1  # the timeout at 10 is still pending

    def test_run_until_past_time_rejected(self, env):
        env.timeout(1)
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_until_event_returns_value(self, env):
        t = env.timeout(3, value="ring")
        assert env.run(until=t) == "ring"
        assert env.now == 3

    def test_run_until_failed_event_raises(self, env):
        def proc(env):
            yield env.timeout(1)
            raise RuntimeError("proc crash")

        p = env.process(proc(env))
        with pytest.raises(Exception, match="proc crash"):
            env.run(until=p)

    def test_run_without_until_drains_calendar(self, env):
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert env.now == 2
        assert len(env) == 0

    def test_run_until_already_processed_event(self, env):
        t = env.timeout(1, value="done")
        env.run()
        assert env.run(until=t) == "done"

    def test_run_until_event_that_never_fires(self, env):
        pending = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="never fired"):
            env.run(until=pending)

    def test_stop_time_beats_same_time_events(self, env):
        fired = []
        env.timeout(5).callbacks.append(lambda e: fired.append("timeout"))
        env.run(until=5)
        # The URGENT stop event at t=5 preempts the normal event at t=5.
        assert fired == []
        assert env.now == 5


class TestDeterminism:
    def test_same_script_same_trace(self):
        def script(env, log):
            def worker(env, tag):
                for _ in range(3):
                    yield env.timeout(1.5)
                    log.append((env.now, tag))

            env.process(worker(env, "x"))
            env.process(worker(env, "y"))
            env.run()

        log1, log2 = [], []
        script(Environment(), log1)
        script(Environment(), log2)
        assert log1 == log2

    def test_schedule_order_is_fifo_for_ties(self, env):
        order = []
        e1, e2 = env.event(), env.event()
        e1.callbacks.append(lambda e: order.append(1))
        e2.callbacks.append(lambda e: order.append(2))
        e1.succeed()
        e2.succeed()
        env.run()
        assert order == [1, 2]
