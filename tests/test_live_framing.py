"""Unit tests: length-prefixed framing, envelopes, and dedup.

All pure — no sockets, no asyncio.  The framing layer is the part of
the live wire protocol that must be byte-exact, so it gets byte-exact
tests.
"""

import pickle
import struct

import pytest

from repro.errors import FrameTooLargeError
from repro.runtime.live.framing import (
    DEFAULT_MAX_PAYLOAD,
    PREFIX_SIZE,
    FrameDecoder,
    encode_frame,
)
from repro.runtime.live.wire import (
    DedupIndex,
    Envelope,
    EnvelopeFactory,
    HEARTBEAT,
    OBJECT_TRANSFER,
)


class TestEncodeFrame:
    def test_prefix_is_big_endian_length(self):
        frame = encode_frame(b"hello")
        assert frame[:PREFIX_SIZE] == struct.pack(">I", 5)
        assert frame[PREFIX_SIZE:] == b"hello"

    def test_empty_payload_is_legal(self):
        assert encode_frame(b"") == struct.pack(">I", 0)

    def test_oversized_payload_refused_at_sender(self):
        with pytest.raises(FrameTooLargeError) as excinfo:
            encode_frame(b"x" * 11, max_payload=10)
        assert excinfo.value.size == 11
        assert excinfo.value.limit == 10


class TestFrameDecoder:
    def test_roundtrip_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"payload")) == [b"payload"]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time_reassembly(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"slow drip")
        collected = []
        for i in range(len(frame)):
            collected.extend(decoder.feed(frame[i:i + 1]))
        assert collected == [b"slow drip"]

    def test_multiple_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        chunk = encode_frame(b"one") + encode_frame(b"two") + encode_frame(b"")
        assert decoder.feed(chunk) == [b"one", b"two", b""]
        assert decoder.frames_decoded == 3

    def test_partial_frame_straddles_chunks(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"abcdef")
        assert decoder.feed(frame[:PREFIX_SIZE + 2]) == []
        assert decoder.pending_bytes == PREFIX_SIZE + 2
        assert decoder.feed(frame[PREFIX_SIZE + 2:]) == [b"abcdef"]

    def test_oversized_prefix_rejected_before_buffering(self):
        decoder = FrameDecoder(max_payload=16)
        evil = struct.pack(">I", 2**31)  # prefix only, no payload yet
        with pytest.raises(FrameTooLargeError) as excinfo:
            decoder.feed(evil)
        assert excinfo.value.size == 2**31
        assert excinfo.value.limit == 16

    def test_invalid_max_payload(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_payload=0)


class TestEnvelope:
    def test_pickle_roundtrip_through_frame(self):
        factory = EnvelopeFactory(3)
        sent = factory.make(
            OBJECT_TRANSFER, 7, {"object_id": 42, "state": b"\x00\xff"}
        )
        decoder = FrameDecoder()
        (blob,) = decoder.feed(encode_frame(sent.encode()))
        received = Envelope.decode(blob)
        assert received == sent
        assert received.msg_id == (3, 1)

    def test_decode_rejects_non_envelope(self):
        with pytest.raises(TypeError):
            Envelope.decode(pickle.dumps({"not": "an envelope"}))

    def test_factory_sequences_are_per_node_monotonic(self):
        factory = EnvelopeFactory(5)
        ids = [factory.make(HEARTBEAT, 0).msg_id for _ in range(4)]
        assert ids == [(5, 1), (5, 2), (5, 3), (5, 4)]

    def test_reply_to_carries_request_id(self):
        factory = EnvelopeFactory(1)
        request = factory.make(HEARTBEAT, 2)
        reply = factory.make("reply", 2, reply_to=request.msg_id)
        assert reply.reply_to == (1, 1)


class TestDedupIndex:
    def test_fresh_ids_pass_duplicates_blocked(self):
        index = DedupIndex()
        assert index.seen((1, 1)) is False
        assert index.seen((1, 2)) is False
        assert index.seen((1, 1)) is True
        assert index.seen((1, 2)) is True
        assert index.duplicates == 2

    def test_peers_are_independent(self):
        index = DedupIndex()
        assert index.seen((1, 1)) is False
        assert index.seen((2, 1)) is False  # same seq, different peer

    def test_out_of_order_then_contiguous_floor_advance(self):
        index = DedupIndex()
        assert index.seen((1, 3)) is False
        assert index.seen((1, 1)) is False
        assert index.seen((1, 2)) is False
        # Floor is now 3; all three replays are duplicates.
        assert index.seen((1, 1)) is True
        assert index.seen((1, 2)) is True
        assert index.seen((1, 3)) is True

    def test_window_overflow_collapses_safely(self):
        index = DedupIndex(window=4)
        # Feed widely-spaced ids so the floor cannot advance.
        for seq in (10, 20, 30, 40, 50, 60):
            assert index.seen((1, seq)) is False
        # Overflow collapsed the oldest ids into the floor: replaying
        # them is still (conservatively) a duplicate.
        assert index.seen((1, 10)) is True
        assert index.seen((1, 20)) is True

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DedupIndex(window=0)
