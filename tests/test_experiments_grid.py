"""Tests for the 2-D parameter grid sweeps."""

import pytest

from repro.experiments.grid import Axis, GridResult, sweep_grid
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)

BASE = SimulationParameters(nodes=3, servers_layer1=3, seed=0)


class TestAxis:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not a SimulationParameters"):
            Axis("warp_factor", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            Axis("clients", ())


class TestSweep:
    @pytest.fixture(scope="class")
    def grid(self) -> GridResult:
        return sweep_grid(
            BASE,
            rows=Axis("policy", ("sedentary", "placement")),
            cols=Axis("clients", (2, 6)),
            stopping=TINY,
        )

    def test_shape(self, grid):
        assert len(grid.values) == 2
        assert all(len(row) == 2 for row in grid.values)

    def test_at_lookup(self, grid):
        assert grid.at("sedentary", 2) == grid.values[0][0]
        assert grid.at("placement", 6) == grid.values[1][1]

    def test_sedentary_row_is_flat(self, grid):
        row = grid.values[0]
        assert row[0] == pytest.approx(row[1], rel=0.2)

    def test_best_cell_is_minimum(self, grid):
        _, _, best_value = grid.best_cell()
        assert best_value == min(v for row in grid.values for v in row)

    def test_format_contains_axes(self, grid):
        text = grid.format()
        assert "policy\\clients" in text
        assert "sedentary" in text
        assert "placement" in text

    def test_same_axis_twice_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            sweep_grid(
                BASE,
                rows=Axis("clients", (1,)),
                cols=Axis("clients", (2,)),
                stopping=TINY,
            )

    def test_parallel_matches_serial(self):
        rows = Axis("policy", ("sedentary",))
        cols = Axis("clients", (2, 4))
        serial = sweep_grid(BASE, rows, cols, stopping=TINY, workers=1)
        parallel = sweep_grid(BASE, rows, cols, stopping=TINY, workers=2)
        assert serial.values == parallel.values
