"""Tests for fault injection and the availability study (§2.2)."""

import pytest

from repro.availability import (
    AvailabilityParameters,
    AvailabilityWorkload,
    FaultInjector,
    run_availability_cell,
)
from repro.errors import ConfigurationError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem
from repro.sim.stopping import StoppingConfig

TINY = StoppingConfig(
    relative_precision=0.2,
    confidence=0.9,
    batch_size=50,
    warmup=50,
    min_batches=3,
    max_observations=3_000,
)


class TestFaultInjector:
    def test_parameter_validation(self):
        system = DistributedSystem(nodes=2)
        with pytest.raises(ValueError):
            FaultInjector(system, mttf=-1)
        with pytest.raises(ValueError):
            FaultInjector(system, mttr=-1)

    def test_mttf_zero_means_scripted_only(self):
        # mttf=0 builds a valid injector that never crashes nodes on
        # its own — chaos campaigns drive it via crash()/recover().
        system = DistributedSystem(nodes=2, seed=0)
        faults = FaultInjector(system, mttf=0)
        faults.start()
        system.run(until=1_000)
        assert faults.failures == 0
        assert faults.crash(1)
        assert faults.is_down(1)
        assert faults.recover(1)
        assert not faults.is_down(1)

    def test_nodes_fail_and_recover(self):
        system = DistributedSystem(nodes=3, seed=0)
        faults = FaultInjector(system, mttf=100.0, mttr=10.0)
        faults.start()
        system.run(until=5_000)
        assert faults.failures > 0
        # Long-run availability approaches mttf/(mttf+mttr) ~ 0.909.
        for node in system.registry.nodes:
            availability = faults.availability_of(node.node_id)
            assert availability == pytest.approx(0.909, abs=0.08)

    def test_invoke_blocks_while_down(self):
        system = DistributedSystem(
            nodes=2, seed=0, latency=DeterministicLatency(1.0)
        )
        server = system.create_server(node=1)
        faults = FaultInjector(system, mttf=1e12, mttr=1e12)
        # Force node 1 down manually for a deterministic scenario.
        faults._down.add(1)

        def recover(env):
            yield env.timeout(25.0)
            faults._down.discard(1)
            faults._recovered[1].notify_all()

        def caller(env):
            result, blocked = yield from faults.invoke(0, server)
            return (env.now, blocked, result.duration)

        system.env.process(recover(system.env))
        p = system.env.process(caller(system.env))
        system.env.run()
        end, blocked, duration = p.value
        assert blocked == pytest.approx(25.0)
        assert end == pytest.approx(27.0)  # 25 blocked + round trip 2

    def test_no_faults_means_full_availability(self):
        system = DistributedSystem(nodes=2, seed=0)
        faults = FaultInjector(system, mttf=1e15, mttr=1.0)
        faults.start()
        system.run(until=10_000)
        assert faults.failures == 0
        assert faults.availability_of(0) == 1.0


class TestAvailabilityWorkload:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AvailabilityParameters(nodes=1).validate()
        with pytest.raises(ConfigurationError):
            AvailabilityParameters(placement="ring").validate()
        with pytest.raises(ConfigurationError):
            AvailabilityParameters(group_op_fraction=1.5).validate()
        AvailabilityParameters().validate()

    def test_placements(self):
        collocated = AvailabilityWorkload(
            AvailabilityParameters(placement="collocated")
        )
        nodes = {m.node_id for m in collocated.group}
        assert len(nodes) == 1

        spread = AvailabilityWorkload(
            AvailabilityParameters(placement="spread")
        )
        nodes = {m.node_id for m in spread.group}
        assert len(nodes) == 3

    def test_cell_runs(self):
        result = run_availability_cell(
            AvailabilityParameters(mttf=300.0, mttr=30.0, seed=1),
            stopping=TINY,
        )
        assert result.mean_op_time > 0
        assert result.failures > 0
        assert result.raw["operations"] > 0

    def test_no_fault_baseline_chains_favor_collocation(self):
        base = dict(
            faults_enabled=False, group_op_fraction=1.0, seed=2
        )
        collocated = run_availability_cell(
            AvailabilityParameters(placement="collocated", **base),
            stopping=TINY,
        )
        spread = run_availability_cell(
            AvailabilityParameters(placement="spread", **base),
            stopping=TINY,
        )
        # A chained group op: collocated pays ~1 round trip, spread ~3.
        assert collocated.mean_op_time < 0.6 * spread.mean_op_time

    def test_failover_favors_spread_under_failures(self):
        base = dict(
            mttf=200.0, mttr=50.0, group_op_fraction=0.0, seed=3
        )
        collocated = run_availability_cell(
            AvailabilityParameters(placement="collocated", **base),
            stopping=TINY,
        )
        spread = run_availability_cell(
            AvailabilityParameters(placement="spread", **base),
            stopping=TINY,
        )
        # Pure service accesses: spread fails over around single-node
        # outages; collocated cannot.
        assert spread.mean_blocked_time < collocated.mean_blocked_time
        assert spread.mean_op_time < collocated.mean_op_time

    def test_reproducible(self):
        params = AvailabilityParameters(seed=7)
        a = run_availability_cell(params, stopping=TINY)
        b = run_availability_cell(params, stopping=TINY)
        assert a.mean_op_time == b.mean_op_time
