"""Arbitration WAL: format, durability discipline, replay semantics.

The recovery contract rests on three properties checked here without
any processes:

* **append/replay roundtrip** — whatever ``ArbitrationWal.append``
  wrote, ``replay`` folds back into the same arbitration state;
* **torn-tail tolerance** — a crash mid-append leaves a final line
  that fails its checksum; replay discards it and trusts the prefix,
  while damage anywhere *earlier* is fatal
  (:class:`~repro.errors.WalCorruptionError`);
* **seq discipline** — a reopened log resumes numbering after the
  existing records, and :class:`WalState.apply` is idempotent by seq.
"""

import json

import pytest

from repro.errors import WalCorruptionError
from repro.runtime.live import wal as wal_module
from repro.runtime.live.wal import (
    ArbitrationWal,
    WalRecord,
    WalState,
    decode_record,
    read_records,
    replay,
)
from repro.telemetry.core import Telemetry


def make_init(num_objects=4, workers=(1, 2)):
    return (
        wal_module.INIT,
        {
            "num_objects": num_objects,
            "arbitration": "central",
            "workers": list(workers),
            "placement": {
                str(oid): workers[oid % len(workers)]
                for oid in range(num_objects)
            },
        },
    )


def make_grant(block_id=1, mover=2, source=1, object_id=0, transfer_id=1):
    return (
        wal_module.GRANT,
        {
            "block_id": block_id,
            "object_id": object_id,
            "mover": mover,
            "source": source,
            "transfer_id": transfer_id,
        },
    )


class TestRecordFormat:
    def test_encode_decode_roundtrip(self):
        record = WalRecord(seq=3, kind="grant", data={"block_id": 7})
        assert decode_record(record.encode()) == record

    def test_checksum_mismatch_rejected(self):
        line = WalRecord(seq=1, kind="grant", data={"a": 1}).encode()
        doc = json.loads(line)
        doc["data"]["a"] = 2  # payload changed, crc not recomputed
        with pytest.raises(ValueError, match="checksum"):
            decode_record(json.dumps(doc))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            decode_record('{"seq": 1, "kind": "grant", "data": {}}')

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_record("[1, 2, 3]")


class TestAppendReplay:
    def test_roundtrip_rebuilds_state(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
            wal.append(wal_module.SUPER_START, {})
            wal.append(*make_grant())
            wal.append(wal_module.PLACE, {"transfer_id": 1})
            wal.append(wal_module.END, {"block_id": 1})
        state, records = replay(path)
        assert len(records) == 5
        assert state.last_seq == 5
        assert state.num_objects == 4
        assert state.supervisor_starts == 1
        # The PLACE moved object 0 to the mover; the END closed the block.
        assert state.placement[0] == 2
        assert state.transfers[1].state == "placed"
        assert state.blocks == {}
        assert state.in_doubt() == []

    def test_missing_file_is_empty_log(self, tmp_path):
        records, truncated = read_records(str(tmp_path / "absent.wal"))
        assert records == [] and truncated == 0

    def test_append_on_closed_wal_raises(self, tmp_path):
        wal = ArbitrationWal(str(tmp_path / "arb.wal"))
        with pytest.raises(WalCorruptionError, match="closed"):
            wal.append(wal_module.SUPER_START, {})

    def test_reopen_resumes_seq_numbering(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
            wal.append(wal_module.SUPER_START, {})
        with ArbitrationWal(path) as wal:
            seq = wal.append(wal_module.SUPER_START, {})
        assert seq == 3
        _, records = replay(path)
        assert [r.seq for r in records] == [1, 2, 3]

    def test_open_with_start_seq_skips_rescan(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
        state, _ = replay(path)
        wal = ArbitrationWal(path)
        wal.open(start_seq=state.last_seq)
        assert wal.append(wal_module.SUPER_START, {}) == 2
        wal.close()

    def test_append_counts_into_telemetry(self, tmp_path):
        telemetry = Telemetry()
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path, telemetry=telemetry) as wal:
            wal.append(*make_init())
            wal.append(wal_module.SUPER_START, {})
        (counter,) = [
            m
            for m in telemetry.metrics.snapshot()
            if m["name"] == "wal.records_appended"
        ]
        assert counter["value"] == 2


class TestTornTail:
    def test_torn_final_line_discarded(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
            wal.append(*make_grant())
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "kind": "place", "da')  # crash mid-append
        records, truncated = read_records(path)
        assert [r.seq for r in records] == [1, 2]
        assert truncated == 1

    def test_truncated_records_counted_in_telemetry(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
        with open(path, "a") as fh:
            fh.write("garbage")
        telemetry = Telemetry()
        replay(path, telemetry)
        names = {m["name"]: m["value"] for m in telemetry.metrics.snapshot()}
        assert names["wal.records_replayed"] == 1
        assert names["wal.truncated_records"] == 1

    def test_mid_log_corruption_is_fatal(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        with ArbitrationWal(path) as wal:
            wal.append(*make_init())
            wal.append(*make_grant())
            wal.append(wal_module.PLACE, {"transfer_id": 1})
        lines = open(path).read().splitlines()
        lines[1] = lines[1][:-5] + 'oops"'  # damage a *middle* record
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError) as info:
            read_records(path)
        assert info.value.path == path
        assert info.value.line == 2

    def test_non_monotonic_seq_is_fatal(self, tmp_path):
        path = str(tmp_path / "arb.wal")
        lines = [
            WalRecord(seq=1, kind="super.start", data={}).encode(),
            WalRecord(seq=1, kind="super.start", data={}).encode(),
            WalRecord(seq=2, kind="super.start", data={}).encode(),
        ]
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="non-monotonic"):
            read_records(path)


class TestWalState:
    def test_apply_is_idempotent_by_seq(self):
        records = [
            WalRecord(seq=1, kind=make_init()[0], data=make_init()[1]),
            WalRecord(seq=2, kind=make_grant()[0], data=make_grant()[1]),
            WalRecord(seq=3, kind=wal_module.PLACE, data={"transfer_id": 1}),
        ]
        state = WalState()
        for record in records:
            assert state.apply(record) is True
        snapshot = (dict(state.placement), state.transfers[1].state)
        for record in records:  # replaying the same prefix: all no-ops
            assert state.apply(record) is False
        assert (dict(state.placement), state.transfers[1].state) == snapshot

    def test_rollback_keeps_source_placement(self):
        state = WalState()
        state.apply(WalRecord(1, *make_init()))
        state.apply(WalRecord(2, *make_grant()))
        state.apply(
            WalRecord(3, wal_module.ROLLBACK, {"transfer_id": 1})
        )
        assert state.transfers[1].state == "rolled_back"
        assert state.placement[0] == 1  # never moved

    def test_revert_moves_placement_back(self):
        state = WalState()
        state.apply(WalRecord(1, *make_init()))
        state.apply(WalRecord(2, *make_grant()))
        state.apply(WalRecord(3, wal_module.PLACE, {"transfer_id": 1}))
        assert state.placement[0] == 2
        state.apply(WalRecord(4, wal_module.REVERT, {"transfer_id": 1}))
        assert state.placement[0] == 1
        assert state.transfers[1].state == "rolled_back"

    def test_break_bars_blocks_and_drops_them(self):
        state = WalState()
        state.apply(WalRecord(1, *make_init()))
        state.apply(WalRecord(2, *make_grant()))
        state.apply(
            WalRecord(3, wal_module.BREAK, {"node": 2, "block_ids": [1]})
        )
        assert state.broken_blocks == [1]
        assert state.blocks == {}

    def test_home_records_rebuild_slice_map_and_mirror(self):
        state = WalState()
        state.apply(WalRecord(1, *make_init()))
        state.apply(
            WalRecord(
                2, wal_module.HOME_ASSIGN, {"node": 2, "slices": [0, 1]}
            )
        )
        state.apply(
            WalRecord(
                3, wal_module.PLACE_MIRROR, {"object_id": 3, "node": 2}
            )
        )
        assert state.home == {0: 2, 1: 2}
        assert state.placement[3] == 2

    def test_incarnation_and_unknown_kinds(self):
        state = WalState()
        state.apply(
            WalRecord(1, wal_module.INCARNATION, {"node": 1, "incarnation": 2})
        )
        # Forward compatibility: unknown kinds advance seq, change nothing.
        assert state.apply(WalRecord(2, "future.kind", {"x": 1})) is True
        assert state.incarnations[1] == 2
        assert state.last_seq == 2

    def test_in_doubt_and_placed_worklists(self):
        state = WalState()
        state.apply(WalRecord(1, *make_init()))
        state.apply(WalRecord(2, *make_grant(transfer_id=1, block_id=1)))
        state.apply(
            WalRecord(
                3,
                *make_grant(
                    transfer_id=2, block_id=2, object_id=1, mover=1, source=2
                ),
            )
        )
        state.apply(WalRecord(4, wal_module.PLACE, {"transfer_id": 2}))
        assert [t.transfer_id for t in state.in_doubt()] == [1]
        assert [t.transfer_id for t in state.placed()] == [2]
        assert state.max_transfer_id == 2
        assert state.max_block_id == 2
