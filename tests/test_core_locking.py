"""Unit tests for place-policy locks."""

import pytest

from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.objects import DistributedObject


@pytest.fixture
def obj(env):
    return DistributedObject(env, object_id=1, node_id=0)


@pytest.fixture
def obj2(env):
    return DistributedObject(env, object_id=2, node_id=0)


@pytest.fixture
def block(obj):
    return MoveBlock(client_node=0, target=obj)


class TestLocking:
    def test_lock_marks_object(self, obj, block):
        locks = LockManager()
        locks.lock(obj, block)
        assert locks.is_locked(obj)
        assert obj.is_locked
        assert locks.holder(obj) is block
        assert obj in block.locked_objects

    def test_double_lock_rejected(self, obj, obj2, block):
        locks = LockManager()
        locks.lock(obj, block)
        other = MoveBlock(client_node=1, target=obj2)
        with pytest.raises(PolicyError):
            locks.lock(obj, other)

    def test_lock_all(self, obj, obj2, block):
        locks = LockManager()
        locks.lock_all([obj, obj2], block)
        assert locks.is_locked(obj) and locks.is_locked(obj2)

    def test_release_block_frees_everything(self, obj, obj2, block):
        locks = LockManager()
        locks.lock_all([obj, obj2], block)
        assert locks.release_block(block) == 2
        assert not locks.is_locked(obj)
        assert not locks.is_locked(obj2)

    def test_release_is_idempotent(self, obj, block):
        locks = LockManager()
        locks.lock(obj, block)
        locks.release_block(block)
        assert locks.release_block(block) == 0

    def test_release_unknown_block_is_noop(self, obj, block):
        locks = LockManager()
        assert locks.release_block(block) == 0

    def test_locked_objects_listing(self, obj, obj2, block):
        locks = LockManager()
        locks.lock_all([obj2, obj], block)
        assert locks.locked_objects() == [obj, obj2]

    def test_invariant_check_passes(self, obj, obj2, block):
        locks = LockManager()
        locks.lock_all([obj, obj2], block)
        locks.check_invariant()

    def test_relock_after_release(self, obj, block, obj2):
        locks = LockManager()
        locks.lock(obj, block)
        locks.release_block(block)
        other = MoveBlock(client_node=1, target=obj2)
        locks.lock(obj, other)
        assert locks.holder(obj) is other
