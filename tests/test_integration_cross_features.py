"""Cross-feature integration: combinations the unit suites don't cover."""

import pytest

from repro.core.attachment import AttachmentMode
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell
from repro.workload.layered import LayeredWorkload
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.25,
    confidence=0.9,
    batch_size=50,
    warmup=50,
    min_batches=3,
    max_observations=3_000,
)

LAYERED = SimulationParameters(
    nodes=24,
    clients=6,
    servers_layer1=6,
    servers_layer2=6,
    mean_calls_per_block=6.0,
    working_set_size=2,
)


class TestGuardedCombinations:
    def test_guarded_policy_on_layered_workload(self):
        """The thrashing guard composes with attachments."""
        params = LAYERED.with_overrides(
            policy="guarded:migration",
            attachment_mode=AttachmentMode.UNRESTRICTED,
            seed=0,
        )
        workload = LayeredWorkload(params, stopping=TINY)
        result = workload.run()
        assert result.mean_communication_time_per_call > 0
        # The guard inherits the attachment graph through the wrapper.
        assert workload.policy.inner.attachments is workload.attachments
        workload.system.registry.check_consistency()

    def test_guard_tames_unrestricted_attachment_devastation(self):
        base = LAYERED.with_overrides(
            attachment_mode=AttachmentMode.UNRESTRICTED, clients=8, seed=1
        )
        plain = run_cell(
            base.with_overrides(policy="migration"), stopping=TINY
        )
        guarded = run_cell(
            base.with_overrides(policy="guarded:migration"), stopping=TINY
        )
        assert (
            guarded.mean_communication_time_per_call
            < plain.mean_communication_time_per_call
        )


class TestDynamicPoliciesWithAttachments:
    @pytest.mark.parametrize("policy", ["comparing", "reinstantiation"])
    def test_dynamic_policy_on_layered_workload(self, policy):
        """The dynamic policies respect A-transitive closures too."""
        params = LAYERED.with_overrides(
            policy=policy,
            attachment_mode=AttachmentMode.A_TRANSITIVE,
            use_alliances=True,
            seed=2,
        )
        workload = LayeredWorkload(params, stopping=TINY)
        result = workload.run()
        workload.system.registry.check_consistency()
        workload.policy.locks.check_invariant()
        # Granted moves drag at most the 3-object alliance working set.
        blocks = result.raw["metrics"]["blocks"]
        migrations = result.raw["migrations"]
        assert migrations <= 3 * blocks + 10


class TestVisitOnLayered:
    def test_visit_style_with_alliances(self):
        params = LAYERED.with_overrides(
            policy="placement",
            attachment_mode=AttachmentMode.A_TRANSITIVE,
            use_alliances=True,
            block_style="visit",
            seed=3,
        )
        workload = LayeredWorkload(params, stopping=TINY)
        result = workload.run()
        assert result.mean_communication_time_per_call > 0
        workload.system.registry.check_consistency()


class TestLocatorCombinations:
    @pytest.mark.parametrize("locator", ["forwarding", "nameserver"])
    def test_non_default_locator_with_placement(self, locator):
        params = SimulationParameters(
            policy="placement", locator=locator, clients=4, seed=4
        )
        result = run_cell(params, stopping=TINY)
        assert result.mean_communication_time_per_call > 0

    def test_forwarding_locator_charges_after_migrations(self):
        """Under a migrating policy the forwarding locator must see
        migrations (lookup_messages accrue)."""
        from repro.workload.clientserver import ClientServerWorkload

        params = SimulationParameters(
            policy="migration",
            locator="forwarding",
            clients=6,
            mean_interblock_time=10.0,
            seed=5,
        )
        workload = ClientServerWorkload(params, stopping=TINY)
        workload.run()
        assert workload.system.locator.lookup_messages > 0


class TestTopologyCombinations:
    @pytest.mark.parametrize("topology", ["ring", "star", "grid"])
    def test_every_policy_runs_on_every_topology(self, topology):
        for policy in ("sedentary", "migration", "placement"):
            params = SimulationParameters(
                policy=policy, topology=topology, clients=3, seed=6
            )
            result = run_cell(params, stopping=TINY)
            assert result.mean_communication_time_per_call >= 0
