"""Unit tests for the invocation timeout/retry/backoff layer."""

import pytest

from repro.errors import TimeoutError
from repro.network.faults import LinkFaultModel
from repro.network.latency import DeterministicLatency
from repro.runtime.retry import RetryPolicy
from repro.runtime.system import DistributedSystem


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="base"):
            RetryPolicy(base=-1.0)
        with pytest.raises(ValueError, match="cap"):
            RetryPolicy(base=5.0, cap=1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_exponentially_and_caps(self, streams):
        policy = RetryPolicy(base=1.0, multiplier=2.0, cap=5.0, jitter=0.0)
        s = streams.stream("unused")
        assert [policy.backoff(k, s) for k in range(5)] == [
            1.0,
            2.0,
            4.0,
            5.0,
            5.0,
        ]
        with pytest.raises(ValueError, match="retry_index"):
            policy.backoff(-1, s)

    def test_jitter_shrinks_within_bounds(self, streams):
        policy = RetryPolicy(base=4.0, multiplier=1.0, cap=4.0, jitter=0.5)
        s = streams.stream("jitter")
        for _ in range(200):
            delay = policy.backoff(0, s)
            assert 2.0 <= delay <= 4.0

    def test_jitter_free_policy_never_draws(self):
        policy = RetryPolicy(jitter=0.0)
        # stream=None would explode on any draw attempt.
        assert policy.backoff(1, None) == 2.0

    def test_worst_case_duration(self):
        policy = RetryPolicy(
            max_attempts=4, timeout=8.0, base=1.0, multiplier=2.0,
            cap=30.0, jitter=0.0,
        )
        # 4 timeouts + backoffs 1 + 2 + 4.
        assert policy.worst_case_duration == 39.0


def make_system(retry):
    model = LinkFaultModel()
    system = DistributedSystem(
        nodes=2,
        seed=5,
        latency=DeterministicLatency(1.0),
        fault_model=model,
        retry=retry,
    )
    server = system.create_server(node=1, name="s")
    return system, model, server


#: Deterministic policy used by the timeline tests below.
DET = RetryPolicy(
    max_attempts=4, timeout=8.0, base=1.0, multiplier=2.0, cap=30.0,
    jitter=0.0,
)


class TestInvocationRetries:
    def test_call_succeeds_once_link_restored(self):
        system, model, server = make_system(DET)
        model.fail_link(0, 1)

        def restore():
            yield system.env.timeout(20.0)
            model.restore_link(0, 1)

        def caller():
            result = yield from system.invocations.invoke(0, server)
            return result

        system.env.process(restore(), name="restore")
        p = system.env.process(caller(), name="caller")
        system.run()

        # Attempt k spends 1 on the wire + 7 waiting out the timeout,
        # then backs off 1, 2, 4: attempts start at 0, 9, 19, 31.  The
        # link is up again at t=20, so attempt 4 completes: call+reply.
        result = p.value
        assert result.attempts == 4
        assert not result.was_local
        assert system.now == pytest.approx(33.0)
        assert result.duration == pytest.approx(33.0)
        svc = system.invocations
        assert svc.timeouts == 3
        assert svc.retries == 3
        assert svc.failed_calls == 0
        assert svc.retry_wait_time == pytest.approx(1.0 + 2.0 + 4.0)
        assert svc.durations.count == 1

    def test_exhausted_attempts_raise_timeout_error(self):
        system, model, server = make_system(DET)
        model.fail_link(0, 1)

        def caller():
            try:
                yield from system.invocations.invoke(0, server)
            except TimeoutError:
                return system.now
            return None

        p = system.env.process(caller(), name="caller")
        system.run()

        # The failed call's wall clock is exactly the policy's bound.
        assert p.value == pytest.approx(DET.worst_case_duration)
        svc = system.invocations
        assert svc.timeouts == 4
        assert svc.retries == 3
        assert svc.failed_calls == 1
        # Failed calls are not mixed into the duration statistics.
        assert svc.durations.count == 0
        assert svc.stats()["failed_calls"] == 1

    def test_lost_reply_reexecutes_at_least_once(self):
        system, model, server = make_system(DET)

        def saboteur():
            # Cut the link after the call message was sent (t=0) but
            # before the reply goes out (t=1): only the reply is lost.
            yield system.env.timeout(0.5)
            model.fail_link(0, 1)
            yield system.env.timeout(4.5)
            model.restore_link(0, 1)

        def caller():
            result = yield from system.invocations.invoke(0, server)
            return result

        system.env.process(saboteur(), name="saboteur")
        p = system.env.process(caller(), name="caller")
        system.run()

        # Attempt 1 executed at the callee but its reply was lost; the
        # retry executed it again — at-least-once semantics.
        assert p.value.attempts == 2
        assert server.invocation_count == 2
        assert system.invocations.timeouts == 1

    def test_retry_is_never_reported_local(self):
        # A retried call whose final attempt happened to be node-local
        # must still count as remote: the caller paid timeout+backoff.
        system, model, server = make_system(DET)
        model.fail_link(0, 1)

        def fixer():
            yield system.env.timeout(5.0)
            model.restore_link(0, 1)
            # Move the server onto the caller's node while it retries.
            yield from system.migrations.migrate([server], 0)

        def caller():
            result = yield from system.invocations.invoke(0, server)
            return result

        system.env.process(fixer(), name="fixer")
        p = system.env.process(caller(), name="caller")
        system.run()
        assert p.value.attempts > 1
        assert not p.value.was_local
        assert system.invocations.local_calls == 0
