"""Unit tests for migration abort-and-rollback under faults."""

import pytest

from repro.errors import MigrationAbortedError
from repro.network.faults import LinkFaultModel
from repro.runtime.system import DistributedSystem


class StubHealth:
    """Minimal node-health provider (what FaultInjector duck-types)."""

    def __init__(self, down=()):
        self.down = set(down)

    def is_down(self, node_id):
        return node_id in self.down


def make_system(down=(), cut_links=()):
    model = LinkFaultModel() if cut_links else None
    system = DistributedSystem(
        nodes=3, seed=3, migration_duration=6.0, fault_model=model
    )
    for a, b in cut_links:
        model.fail_link(a, b)
    system.migrations.health = StubHealth(down)
    return system


class TestFastAbort:
    def test_known_dead_target_aborts_before_transit(self):
        system = make_system(down={2})
        obj = system.create_server(node=0, name="s")

        def proc():
            outcome = yield from system.migrations.migrate([obj], 2)
            return outcome

        p = system.env.process(proc(), name="mover")
        system.run()

        outcome = p.value
        assert outcome.aborted == [obj]
        assert outcome.moved == []
        # No transit window was ever opened: the origin runtime rejects
        # the transfer outright, at zero cost.
        assert outcome.elapsed == 0.0
        assert outcome.wasted_transfer_time == 0.0
        assert obj.node_id == 0
        assert not obj.in_transit
        assert system.migrations.migrations_aborted == 1


class TestRollback:
    def test_lost_transfer_rolls_back_to_origin(self):
        system = make_system(cut_links=[(0, 2)])
        obj = system.create_server(node=0, name="s")

        def proc():
            outcome = yield from system.migrations.migrate([obj], 2)
            return outcome

        p = system.env.process(proc(), name="mover")
        system.run()

        outcome = p.value
        assert outcome.aborted == [obj]
        # Outbound transfer window + rollback window.
        assert outcome.elapsed == pytest.approx(12.0)
        assert outcome.wasted_transfer_time == pytest.approx(12.0)
        assert obj.node_id == 0
        assert not obj.in_transit
        assert system.migrations.migration_count == 0
        assert system.migrations.wasted_transfer_time == pytest.approx(12.0)

    def test_blocked_caller_wakes_at_origin(self):
        system = make_system(cut_links=[(0, 2)])
        obj = system.create_server(node=0, name="s")

        def mover():
            yield from system.migrations.migrate([obj], 2)

        def caller():
            # Issued while the object is in transit: blocks, then is
            # served wherever the object landed — its origin.
            yield system.env.timeout(1.0)
            result = yield from system.invocations.invoke(0, obj)
            return (system.now, result.blocked_time, obj.node_id)

        system.env.process(mover(), name="mover")
        p = system.env.process(caller(), name="caller")
        system.run()

        now, blocked, node = p.value
        assert node == 0
        # Blocked from t=1 until the rollback reinstall at t=12.
        assert blocked == pytest.approx(11.0)
        assert obj.invocation_count == 1

    def test_mixed_set_partially_aborts(self):
        system = make_system(cut_links=[(0, 2)])
        doomed = system.create_server(node=0, name="doomed")
        fine = system.create_server(node=1, name="fine")

        def proc():
            outcome = yield from system.migrations.migrate(
                [doomed, fine], 2
            )
            return outcome

        p = system.env.process(proc(), name="mover")
        system.run()

        outcome = p.value
        assert outcome.moved == [fine]
        assert outcome.aborted == [doomed]
        assert outcome.aborted_count == 1
        assert fine.node_id == 2
        assert doomed.node_id == 0
        # The set operation waits for the slowest member — here the
        # aborted one's out-and-back trip.
        assert outcome.elapsed == pytest.approx(12.0)

    def test_strict_mode_raises_after_rollback(self):
        system = make_system(down={2})
        obj = system.create_server(node=0, name="s")

        def proc():
            try:
                yield from system.migrations.migrate([obj], 2, strict=True)
            except MigrationAbortedError:
                return ("raised", obj.node_id, obj.in_transit)
            return None

        p = system.env.process(proc(), name="mover")
        system.run()
        # The exception surfaces only once the rollback is complete.
        assert p.value == ("raised", 0, False)


class TestNoFaultPath:
    def test_outcome_fields_quiet_without_faults(self):
        system = DistributedSystem(nodes=2, seed=1)
        obj = system.create_server(node=0, name="s")

        def proc():
            outcome = yield from system.migrations.migrate([obj], 1)
            return outcome

        p = system.env.process(proc(), name="mover")
        system.run()
        assert p.value.aborted == []
        assert p.value.wasted_transfer_time == 0.0
        assert system.migrations.migrations_aborted == 0
        assert obj.node_id == 1
