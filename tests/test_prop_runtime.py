"""Property-based tests for runtime invariants under random interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem

N_NODES = 4
N_OBJECTS = 5

#: A migration script: (object index, target node, start delay).
migration_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.floats(min_value=0.0, max_value=30.0),
    ),
    min_size=1,
    max_size=15,
)


@given(migration_scripts)
@settings(max_examples=50, deadline=None)
def test_registry_consistent_under_arbitrary_migrations(script):
    """Residency bookkeeping survives any interleaving of migrations."""
    system = DistributedSystem(
        nodes=N_NODES, migration_duration=3.0, latency=DeterministicLatency(1.0)
    )
    objs = [system.create_server(node=i % N_NODES) for i in range(N_OBJECTS)]

    def mover(env, obj, target, delay):
        if delay > 0:
            yield env.timeout(delay)
        yield from system.migrations.migrate([obj], target)
        system.registry.check_consistency()

    for obj_idx, target, delay in script:
        system.env.process(mover(system.env, objs[obj_idx], target, delay))
    system.env.run()

    system.registry.check_consistency()
    # Every object landed somewhere and nothing is still in transit.
    for obj in objs:
        assert not obj.in_transit
        assert 0 <= obj.node_id < N_NODES


@given(migration_scripts)
@settings(max_examples=50, deadline=None)
def test_migration_counts_conserved(script):
    """Total per-object migrations == service-wide migration count."""
    system = DistributedSystem(
        nodes=N_NODES, migration_duration=2.0, latency=DeterministicLatency(1.0)
    )
    objs = [system.create_server(node=0) for _ in range(N_OBJECTS)]

    def mover(env, obj, target, delay):
        if delay > 0:
            yield env.timeout(delay)
        yield from system.migrations.migrate([obj], target)

    for obj_idx, target, delay in script:
        system.env.process(mover(system.env, objs[obj_idx], target, delay))
    system.env.run()

    assert (
        sum(o.migration_count for o in objs)
        == system.migrations.migration_count
    )


#: Lock scripts: sequence of (action, object index) where action 0=try
#: lock with a fresh block, 1=release most recent holder.
lock_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=N_OBJECTS - 1),
    ),
    max_size=40,
)


@given(lock_scripts)
def test_lock_safety_under_random_sequences(script):
    """At most one holder per object, ever; ledger stays consistent."""
    system = DistributedSystem(nodes=2)
    objs = [system.create_server(node=0) for _ in range(N_OBJECTS)]
    locks = LockManager()
    holders = {}  # object index -> block

    for action, idx in script:
        obj = objs[idx]
        if action == 0:
            block = MoveBlock(0, obj)
            if not locks.is_locked(obj):
                locks.lock(obj, block)
                holders[idx] = block
        else:
            block = holders.pop(idx, None)
            if block is not None:
                locks.release_block(block)
        locks.check_invariant()
        for i, o in enumerate(objs):
            assert o.is_locked == (i in holders)
