"""Unit tests for the replication service (§5 outlook substrate)."""

import pytest

from repro.network.latency import DeterministicLatency
from repro.replication.service import ReplicationService
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4, seed=0, latency=DeterministicLatency(1.0)
    )


@pytest.fixture
def service(system):
    return ReplicationService(
        system.env, system.network, copy_duration=6.0
    )


def run(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestReplicate:
    def test_copy_takes_duration(self, system, service):
        obj = system.create_server(node=0)
        created = run(system, service.replicate(obj, 2))
        assert created
        assert system.env.now == pytest.approx(6.0)
        assert service.replicas_of(obj) == {2}
        assert service.has_copy(obj, 2)
        assert service.replications == 1

    def test_replicate_existing_is_noop(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.replicate(obj, 2))
        t = system.env.now
        created = run(system, service.replicate(obj, 2))
        assert not created
        assert system.env.now == t

    def test_primary_node_never_replicates(self, system, service):
        obj = system.create_server(node=1)
        created = run(system, service.replicate(obj, 1))
        assert not created
        assert service.replica_count(obj) == 0

    def test_drop_replica(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.replicate(obj, 3))
        assert service.drop_replica(obj, 3)
        assert not service.drop_replica(obj, 3)
        assert not service.has_copy(obj, 3)

    def test_invalid_copy_duration(self, system):
        with pytest.raises(ValueError):
            ReplicationService(system.env, system.network, copy_duration=-1)


class TestRead:
    def test_local_primary_read_free(self, system, service):
        obj = system.create_server(node=1)
        result = run(system, service.read(1, obj))
        assert result.duration == 0.0
        assert result.was_local
        assert service.local_reads == 1

    def test_replica_read_free(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.replicate(obj, 2))
        result = run(system, service.read(2, obj))
        assert result.duration == 0.0
        assert result.was_local

    def test_remote_read_round_trip(self, system, service):
        obj = system.create_server(node=0)
        result = run(system, service.read(3, obj))
        assert result.duration == pytest.approx(2.0)
        assert not result.was_local


class TestWrite:
    def test_local_write_no_replicas_free(self, system, service):
        obj = system.create_server(node=0)
        result = run(system, service.write(0, obj))
        assert result.duration == 0.0
        assert result.was_local
        assert result.invalidations == 0

    def test_remote_write_round_trip(self, system, service):
        obj = system.create_server(node=0)
        result = run(system, service.write(2, obj))
        assert result.duration == pytest.approx(2.0)

    def test_write_invalidates_all_replicas(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.replicate(obj, 1))
        run(system, service.replicate(obj, 2))
        result = run(system, service.write(0, obj))
        assert result.invalidations == 2
        assert service.replica_count(obj) == 0
        assert service.invalidations_sent == 2
        # Parallel invalidations: elapsed = one message latency.
        assert result.duration == pytest.approx(1.0)

    def test_invalidated_reader_pays_again(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.replicate(obj, 1))
        run(system, service.write(0, obj))
        result = run(system, service.read(1, obj))
        assert not result.was_local

    def test_stats_shape(self, system, service):
        obj = system.create_server(node=0)
        run(system, service.read(1, obj))
        run(system, service.write(1, obj))
        stats = service.stats()
        assert stats["reads"] == 1
        assert stats["writes"] == 1
        assert stats["mean_read"] == pytest.approx(2.0)
