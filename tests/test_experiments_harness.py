"""Tests for experiment definitions, runner, reporting and CLI."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import ExperimentDef, SeriesDef
from repro.experiments.figures import (
    FIGURES,
    figure8,
    figure10,
    figure11,
    figure12,
    figure14,
    figure16,
    make_figure,
)
from repro.experiments.report import format_table, summary_lines, to_csv
from repro.experiments.runner import ExperimentRunner, run_figure
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_500,
)


def tiny_experiment():
    base = SimulationParameters(policy="sedentary")
    return ExperimentDef(
        exp_id="tiny",
        title="Tiny",
        x_label="t_m",
        x_values=(10.0, 30.0),
        series=(
            SeriesDef(
                "sedentary",
                lambda tm: base.with_overrides(mean_interblock_time=tm),
            ),
            SeriesDef(
                "placement",
                lambda tm: base.with_overrides(
                    mean_interblock_time=tm, policy="placement"
                ),
            ),
        ),
    )


class TestDefinitions:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_figures_well_formed(self, name):
        defn = make_figure(name, fast=True)
        assert defn.cell_count() == len(defn.series) * len(defn.x_values)
        for label, x, params in defn.cells():
            params.validate()
            assert x in defn.x_values

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            make_figure("fig99")

    def test_fig8_family_shares_cells(self):
        f8, f10, f11 = figure8(), figure10(), figure11()
        assert f8.x_values == f10.x_values == f11.x_values
        assert f8.metric == "mean_communication_time_per_call"
        assert f10.metric == "mean_call_duration"
        assert f11.metric == "mean_migration_time_per_call"

    def test_fig12_parameters_match_paper(self):
        defn = figure12()
        _, _, params = defn.cells()[0]
        assert params.nodes == 27
        assert params.servers_layer1 == 3
        assert params.mean_interblock_time == 30.0

    def test_fig14_uses_dynamic_policies(self):
        labels = [s.label for s in figure14().series]
        assert "Comparing the Nodes" in labels
        assert "Comparing and Reinstantiation" in labels

    def test_fig16_has_five_series(self):
        defn = figure16()
        assert len(defn.series) == 5
        _, _, params = defn.cells()[0]
        assert params.nodes == 24
        assert params.servers_layer1 == 6
        assert params.servers_layer2 == 6
        assert params.mean_calls_per_block == 6.0

    def test_fast_mode_thins_sweep(self):
        assert len(figure12(fast=True).x_values) < len(figure12().x_values)

    def test_seed_propagates_to_cells(self):
        defn = figure8(seed=77)
        for _, _, params in defn.cells():
            assert params.seed == 77


class TestRunner:
    def test_serial_run(self):
        result = ExperimentRunner(stopping=TINY).run(tiny_experiment())
        assert set(result.results) == {"sedentary", "placement"}
        assert len(result.series("sedentary")) == 2
        table = result.as_table()
        assert len(table) == 2
        assert len(table[0]) == 3  # x + 2 series

    def test_parallel_run_matches_serial(self):
        defn = tiny_experiment()
        serial = ExperimentRunner(stopping=TINY, workers=1).run(defn)
        parallel = ExperimentRunner(stopping=TINY, workers=2).run(defn)
        assert serial.series("sedentary") == parallel.series("sedentary")
        assert serial.series("placement") == parallel.series("placement")

    def test_points_pairs(self):
        result = run_figure(tiny_experiment(), stopping=TINY)
        points = result.points("sedentary")
        assert [p[0] for p in points] == [10.0, 30.0]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(workers=0)


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure(tiny_experiment(), stopping=TINY)

    def test_format_table(self, result):
        text = format_table(result)
        assert "tiny: Tiny" in text
        assert "sedentary" in text
        assert "placement" in text
        assert len(text.splitlines()) == 2 + 1 + 2  # header+rule+x rows

    def test_to_csv(self, result):
        csv_text = to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "t_m,sedentary,placement"
        assert len(lines) == 3

    def test_summary_lines(self, result):
        lines = summary_lines(result)
        assert len(lines) == 2
        assert all("start=" in line for line in lines)


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig8", "--fast", "--seed", "3"])
        assert args.figure == "fig8"
        assert args.fast
        assert args.seed == 3

    def test_main_runs_fast_figure(self, capsys, monkeypatch):
        # Shrink the stopping rule so the CLI test stays quick.
        monkeypatch.setattr(StoppingConfig, "fast", staticmethod(lambda: TINY))
        rc = main(["fig8", "--fast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "Transient Placement" in out

    def test_main_writes_csv(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(StoppingConfig, "fast", staticmethod(lambda: TINY))
        target = tmp_path / "out.csv"
        rc = main(["fig8", "--fast", "--csv", str(target)])
        assert rc == 0
        assert target.exists()
        assert "Migration" in target.read_text()
