"""CLI flag coverage: --plot, --json, outlook studies, error paths."""

import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.sim.stopping import StoppingConfig

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)


@pytest.fixture(autouse=True)
def fast_is_tiny(monkeypatch):
    """Make --fast use the tiny test rule so CLI tests stay quick."""
    monkeypatch.setattr(StoppingConfig, "fast", staticmethod(lambda: TINY))


class TestFlags:
    def test_plot_flag_renders_chart(self, capsys):
        rc = main(["fig8", "--fast", "--plot"])
        assert rc == 0
        out = capsys.readouterr().out
        # Chart gutter and legend markers.
        assert " |" in out
        assert "*  without Migration" in out

    def test_json_flag_writes_loadable_document(self, tmp_path, capsys):
        target = tmp_path / "fig8.json"
        rc = main(["fig8", "--fast", "--json", str(target)])
        assert rc == 0
        doc = json.loads(target.read_text())
        assert doc["exp_id"] == "fig8"
        from repro.experiments.persistence import load_result

        result = load_result(target)
        assert result.labels == [
            "without Migration",
            "Migration",
            "Transient Placement",
        ]

    def test_outlook_choice_accepted_by_parser(self):
        parser = build_parser()
        args = parser.parse_args(["availability", "--fast"])
        assert args.figure == "availability"

    def test_unknown_figure_rejected_by_parser(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_seed_changes_results(self, capsys):
        main(["fig8", "--fast", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["fig8", "--fast", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestLiveFlags:
    """Parsing and guard paths for the live demo (the demo itself runs
    in test_live_supervisor.py)."""

    def test_live_choice_and_options_accepted(self):
        parser = build_parser()
        args = parser.parse_args(
            ["live", "--nodes", "4", "--objects", "60", "--duration", "10"]
        )
        assert args.figure == "live"
        assert args.nodes == 4
        assert args.objects == 60
        assert args.duration == 10.0

    def test_live_options_rejected_for_figures(self, capsys):
        rc = main(["fig8", "--nodes", "4"])
        assert rc == 2
        assert "only apply to the live demo" in capsys.readouterr().err

    def test_live_rejects_invalid_config(self, capsys):
        rc = main(["live", "--nodes", "0"])
        assert rc == 2
        assert "invalid live config" in capsys.readouterr().err

    def test_arbitration_and_kill_supervisor_parsed(self):
        parser = build_parser()
        args = parser.parse_args(
            ["live", "--arbitration", "home", "--kill-supervisor"]
        )
        assert args.arbitration == "home"
        assert args.kill_supervisor is True
        # central is the default, and only the two modes parse.
        assert parser.parse_args(["live"]).arbitration == "central"
        with pytest.raises(SystemExit):
            parser.parse_args(["live", "--arbitration", "quorum"])

    def test_arbitration_rejected_for_figures(self, capsys):
        rc = main(["fig8", "--arbitration", "home"])
        assert rc == 2
        assert "only apply to the live demo" in capsys.readouterr().err

    def test_kill_supervisor_rejected_for_figures(self, capsys):
        rc = main(["fig8", "--kill-supervisor"])
        assert rc == 2
        assert "only apply to the live demo" in capsys.readouterr().err

    def test_violations_set_exit_code_and_json(
        self, tmp_path, monkeypatch, capsys
    ):
        """Exit 1 + a top-level 'violations' list in the JSON artifact."""
        import repro.runtime.live.demo as demo_module

        def fake_run_supervised(config, chaos=None, max_recoveries=2):
            return {
                "workers": config.num_nodes,
                "objects": config.num_objects,
                "arbitration": config.arbitration,
                "migrations": 10,
                "distinct_objects_moved": 5,
                "conflict_rate": 0.0,
                "abort_rate": 0.0,
                "crashes_injected": 0,
                "partitions_injected": 0,
                "restarts": 0,
                "leases_broken": 0,
                "invariant_violations": ["obj 3 duplicated at nodes 1 and 2"],
            }

        monkeypatch.setattr(
            demo_module, "run_supervised", fake_run_supervised
        )
        target = tmp_path / "live.json"
        rc = main(
            ["live", "--fast", "--no-chaos", "--json", str(target)]
        )
        assert rc == 1
        doc = json.loads(target.read_text())
        assert doc["violations"] == ["obj 3 duplicated at nodes 1 and 2"]
        out = capsys.readouterr().out
        assert "!! obj 3 duplicated" in out

    def test_supervision_failure_sets_exit_code(self, monkeypatch, capsys):
        import repro.runtime.live.demo as demo_module
        from repro.errors import SupervisionError

        def doomed(config, chaos=None, max_recoveries=2):
            raise SupervisionError("supervisor died 3 times")

        monkeypatch.setattr(demo_module, "run_supervised", doomed)
        rc = main(["live", "--fast", "--no-chaos"])
        assert rc == 1
        assert "live demo failed" in capsys.readouterr().err


class TestCheckFlag:
    def test_check_reports_verdicts(self, capsys):
        """The flag prints one verdict per claim and sets the exit code.

        Under this test module's ultra-loose stopping rule individual
        verdicts can flip, so only the mechanism is asserted here; the
        claims themselves pass at bench precision (see the benchmark
        suite and test_integration_paper_shapes).
        """
        rc = main(["fig8", "--fast", "--check"])
        out = capsys.readouterr().out
        assert "paper claims hold" in out
        verdict_lines = [
            l for l in out.splitlines() if l.startswith(("[PASS]", "[FAIL]"))
        ]
        assert len(verdict_lines) == 5
        failures = [l for l in verdict_lines if l.startswith("[FAIL]")]
        assert rc == (1 if failures else 0)
