"""Unit tests for the metric instruments and registry."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("calls")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("calls")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_stamped_with_registry_clock(self):
        now = [0.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        c = reg.counter("calls")
        now[0] = 7.0
        c.inc()
        assert c.updated_at == 7.0

    def test_to_dict(self):
        reg = MetricsRegistry()
        c = reg.counter("calls", scope="remote")
        c.inc(2)
        d = c.to_dict()
        assert d["name"] == "calls"
        assert d["type"] == "counter"
        assert d["labels"] == {"scope": "remote"}
        assert d["value"] == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12

    def test_series_tracking(self):
        now = [0.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        g = reg.gauge("depth", track_series=True)
        g.set(1)
        now[0] = 5.0
        g.set(2)
        assert g.series == [(0.0, 1), (5.0, 2)]

    def test_series_off_by_default(self):
        g = MetricsRegistry().gauge("depth")
        g.set(1)
        assert g.series is None

    def test_refetch_can_enable_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g2 = reg.gauge("depth", track_series=True)
        assert g2 is g
        assert g.series == []


class TestHistogram:
    def test_bucket_assignment(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        assert h.counts == [1, 1, 1]  # <=1, <=2, +inf overflow
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)
        assert h.mean == pytest.approx(101.0 / 3)

    def test_bounds_sorted(self):
        h = MetricsRegistry().histogram("lat", buckets=(4.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 4.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat", buckets=())

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == DEFAULT_BUCKETS
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1) is reg.counter("a", x=1)

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_different_labels_distinct(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1) is not reg.counter("a", x=2)
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_names_deduplicated_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b", x=1)
        reg.counter("b", x=2)
        reg.counter("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_ordered_and_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.histogram("c", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert [r["name"] for r in snap] == ["a", "b", "c"]
        json.dumps(snap)  # must be JSON-clean

    def test_iteration(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        kinds = {m.kind for m in reg}
        assert kinds == {"counter", "gauge"}


class TestNullRegistry:
    def test_all_instruments_inert_and_shared(self):
        reg = NullMetricsRegistry()
        c = reg.counter("a")
        g = reg.gauge("b", track_series=True)
        h = reg.histogram("c")
        assert c is g is h
        c.inc()
        g.set(5)
        g.dec()
        h.observe(1.0)
        assert len(reg) == 0
        assert reg.names() == []
        assert reg.snapshot() == []
