"""Unit tests for Resource, Store and Waiters."""

import pytest

from repro.sim.resources import Resource, Store, Waiters


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity(self, env):
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_queue_beyond_capacity(self, env):
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        assert not r2.triggered
        assert res.queue_length == 1

    def test_release_hands_to_waiter_fifo(self, env):
        res = Resource(env)
        res.request()
        r2, r3 = res.request(), res.request()
        res.release()
        assert r2.triggered and not r3.triggered
        res.release()
        assert r3.triggered

    def test_release_without_request_raises(self, env):
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_mutex_serializes_processes(self, env):
        res = Resource(env)
        log = []

        def worker(env, tag):
            yield res.request()
            log.append((env.now, tag, "in"))
            yield env.timeout(5)
            log.append((env.now, tag, "out"))
            res.release()

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert log == [
            (0, "a", "in"),
            (5, "a", "out"),
            (5, "b", "in"),
            (10, "b", "out"),
        ]


class TestStore:
    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get_fifo(self, env):
        store = Store(env)
        store.put("first")
        store.put("second")
        g = store.get()
        env.run()
        assert g.value == "first"
        assert store.items == ["second"]

    def test_get_waits_for_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4, "late")]

    def test_bounded_put_waits_for_room(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer(env):
            yield store.put("a")
            yield store.put("b")  # blocks until a is taken
            done.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done == [3]

    def test_len_reports_buffered(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestWaiters:
    def test_notify_wakes_all(self, env):
        cond = Waiters(env)
        woken = []

        def sleeper(env, tag):
            value = yield cond.wait()
            woken.append((tag, value, env.now))

        env.process(sleeper(env, "a"))
        env.process(sleeper(env, "b"))

        def notifier(env):
            yield env.timeout(2)
            count = cond.notify_all("go")
            assert count == 2

        env.process(notifier(env))
        env.run()
        assert sorted(woken) == [("a", "go", 2), ("b", "go", 2)]

    def test_notify_with_no_waiters(self, env):
        cond = Waiters(env)
        assert cond.notify_all() == 0

    def test_waiting_count(self, env):
        cond = Waiters(env)
        cond.wait()
        cond.wait()
        assert cond.waiting == 2
        cond.notify_all()
        assert cond.waiting == 0
