"""Unit tests for the DistributedSystem facade."""

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import Ring
from repro.runtime.objects import ObjectKind
from repro.runtime.system import DistributedSystem


class TestConstruction:
    def test_creates_requested_nodes(self):
        system = DistributedSystem(nodes=5)
        assert system.node_count == 5
        assert [n.node_id for n in system.nodes] == list(range(5))

    def test_custom_topology_respected(self):
        system = DistributedSystem(nodes=4, topology=Ring(4))
        assert isinstance(system.topology, Ring)
        assert system.network.topology is system.topology

    def test_add_node_grows_topology(self):
        system = DistributedSystem(nodes=2)
        system.add_node()
        assert system.node_count == 3
        assert system.topology.size >= 3

    def test_add_node_refuses_to_outgrow_custom_topology(self):
        # Regression: this used to silently replace the user's Ring
        # with a FullyConnected network, invalidating the experiment.
        system = DistributedSystem(nodes=4, topology=Ring(4))
        with pytest.raises(ConfigurationError, match="fixed at size 4"):
            system.add_node()
        # The refused node was not half-registered.
        assert system.node_count == 4
        assert isinstance(system.topology, Ring)

    def test_add_node_fills_oversized_custom_topology(self):
        system = DistributedSystem(nodes=2, topology=Ring(4))
        node = system.add_node()
        assert node.node_id == 2
        assert isinstance(system.topology, Ring)

    def test_object_ids_are_sequential(self):
        system = DistributedSystem(nodes=2)
        a = system.create_server(node=0)
        b = system.create_client(node=1)
        assert (a.object_id, b.object_id) == (0, 1)

    def test_clients_are_fixed(self):
        system = DistributedSystem(nodes=1)
        client = system.create_client(node=0)
        assert client.fixed
        assert client.kind is ObjectKind.CLIENT

    def test_servers_are_mobile(self):
        system = DistributedSystem(nodes=1)
        server = system.create_server(node=0)
        assert not server.fixed
        assert server.kind is ObjectKind.SERVER

    def test_migration_duration_plumbed(self):
        system = DistributedSystem(nodes=1, migration_duration=9.0)
        assert system.migrations.default_duration == 9.0

    def test_now_and_run_delegate(self):
        system = DistributedSystem(nodes=1)
        assert system.now == 0.0
        system.env.timeout(5)
        system.run()
        assert system.now == 5.0

    def test_same_seed_same_network_draws(self):
        def sample(seed):
            system = DistributedSystem(nodes=3, seed=seed)
            return [
                system.network.sample_latency(0, 1) for _ in range(5)
            ]

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)

    def test_repr(self):
        system = DistributedSystem(nodes=2)
        system.create_server(node=0)
        assert "nodes=2" in repr(system)
        assert "objects=1" in repr(system)
