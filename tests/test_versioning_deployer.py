"""Deployer tests: staged execution, checkpoints, retries, rollback.

Each test drives a :class:`MigrationDeployer` as a real simulation
process against a small system, then asserts on the
:class:`DeploymentResult` timeline and the graph digests.
"""

import json

import pytest

from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import (
    ChecksumMismatchError,
    ProcessError,
    StageAbortedError,
)
from repro.runtime.system import DistributedSystem
from repro.versioning.deployer import Checkpoint, MigrationDeployer
from repro.versioning.diff import snapshot_graph
from repro.versioning.planner import MigrationPlanner, VersionConfig

TARGET = VersionConfig.make("up", kinds={"server": "v1"})


class Health:
    """Scripted node-health stub (FaultInjector's deploy-facing API)."""

    def __init__(self, env):
        self.env = env
        self.down = set()

    def is_down(self, node_id):
        return node_id in self.down

    def wait_until_up(self, node_id):
        while self.is_down(node_id):
            yield self.env.timeout(1.0)


def build(servers=5, **deployer_kw):
    system = DistributedSystem(nodes=3, seed=0)
    for i in range(servers):
        system.create_server(i % 3, name=f"s{i}")
    locks = LockManager(env=system.env, lease_duration=50.0)
    plan = MigrationPlanner(system).plan(TARGET, batch_size=2)
    deployer = MigrationDeployer(system, plan, locks, **deployer_kw)
    return system, locks, plan, deployer


def drive(system, deployer, until=10_000.0):
    box = {}

    def _run():
        box["result"] = yield from deployer.deploy()

    system.env.process(_run(), name="deploy-driver")
    system.run(until=until)
    return box["result"]


class TestCleanDeploy:
    def test_all_stages_commit(self):
        system, _, plan, deployer = build()
        result = drive(system, deployer)
        assert result.status == "committed"
        assert result.upgraded == len(plan.changed_ids)
        assert result.rollbacks == 0
        assert result.post_digest == plan.target_digest
        assert all(s.status == "committed" for s in result.stages)
        assert all(s.attempts == 1 for s in result.stages)
        for obj in system.registry.objects:
            assert obj.version == "v1"

    def test_checkpoints_cover_every_stage(self):
        system, _, plan, deployer = build()
        result = drive(system, deployer)
        # Pre-deploy checkpoint plus one per committed stage.
        assert [c.stage for c in result.checkpoints] == [-1] + [
            s.index for s in plan.stages
        ]
        assert result.checkpoints[0].digest == plan.source_digest
        assert result.checkpoints[-1].digest == plan.target_digest

    def test_durable_checkpoint_files(self, tmp_path):
        system, _, plan, deployer = build(checkpoint_dir=str(tmp_path))
        result = drive(system, deployer)
        for cp in result.checkpoints:
            path = tmp_path / f"checkpoint-{cp.stage}.json"
            assert path.exists()
            clone = Checkpoint.from_dict(json.loads(path.read_text()))
            assert clone == cp

    def test_locks_are_released_afterwards(self):
        system, locks, _, deployer = build()
        drive(system, deployer)
        assert locks.locked_objects() == []

    def test_empty_plan_is_a_noop(self):
        system = DistributedSystem(nodes=2, seed=0)
        system.create_server(0, name="s0")
        locks = LockManager(env=system.env)
        plan = MigrationPlanner(system).plan(VersionConfig.make("same"))
        deployer = MigrationDeployer(system, plan, locks)
        gen = deployer.deploy()
        with pytest.raises(StopIteration) as stop:
            next(gen)
        result = stop.value.value
        assert result.status == "empty"
        assert result.post_digest == result.pre_digest

    def test_stale_plan_refused(self):
        system, _, plan, deployer = build()
        # The graph drifted between planning and deploying.
        system.registry.get(plan.changed_ids[0]).version = "v7"
        gen = deployer.deploy()
        with pytest.raises(ChecksumMismatchError, match="stale"):
            next(gen)


class TestAtomicityInvariant:
    def test_holds_on_untouched_and_deployed_graphs(self):
        system, _, _, deployer = build()
        assert deployer.check_version_atomicity() is True
        drive(system, deployer)
        assert deployer.check_version_atomicity() is True

    def test_detects_a_hybrid_version(self):
        system, _, plan, deployer = build()
        system.registry.get(plan.changed_ids[0]).version = "v9"
        verdict = deployer.check_version_atomicity()
        assert verdict[0] is False
        assert "hybrid" in verdict[1]


class TestCoordinatorCrash:
    def crash_window(self, system, health, at, until):
        def _crash():
            yield system.env.timeout(at)
            health.down.add(0)
            yield system.env.timeout(until - at)
            health.down.discard(0)

        system.env.process(_crash(), name="crash-script")

    def test_stage_retries_after_crash(self):
        system, _, plan, deployer = build(max_stage_retries=3)
        health = Health(system.env)
        deployer.health = health
        # Down inside stage 0's upgrade window, back up later.
        self.crash_window(system, health, at=1.0, until=10.0)
        result = drive(system, deployer)
        assert result.status == "committed"
        assert result.stage_rollbacks == 1
        assert result.stages[0].attempts == 2
        assert result.post_digest == plan.target_digest

    def test_exhausted_retries_roll_back_everything(self):
        system, _, plan, deployer = build(max_stage_retries=0)
        health = Health(system.env)
        deployer.health = health
        self.crash_window(system, health, at=1.0, until=10.0)
        result = drive(system, deployer)
        assert result.status == "rolled-back"
        assert result.rollback_reason == "coordinator-crash"
        assert result.full_rollbacks == 1
        assert result.post_digest == plan.source_digest
        for obj in system.registry.objects:
            assert obj.version == "v0"


class TestGatesAndRollback:
    def test_gate_failure_rolls_back_bit_identically(self):
        system, _, _, _ = build()
        pre = snapshot_graph(system)
        system2, _, plan, deployer = build(
            gates=(("bad", lambda: (False, "induced")),)
        )
        result = drive(system2, deployer)
        assert result.status == "rolled-back"
        assert result.rollback_reason == "invariant-violation"
        assert result.stages[0].reason == "invariant-violation"
        assert result.stages[0].attempts == 1  # not retryable
        assert result.post_digest == plan.source_digest
        # Same seed, same build: the restored graph matches the twin
        # system that never deployed at all.
        assert snapshot_graph(system2).root_digest == pre.root_digest

    def test_lock_timeout_gives_up_cleanly(self):
        system, locks, plan, deployer = build(
            lock_wait=5.0, max_stage_retries=0
        )
        # A foreign block camps on a stage-0 object and never lets go.
        victim = system.registry.get(plan.stages[0].object_ids[0])
        locks.lock(victim, MoveBlock(2, victim))
        result = drive(system, deployer)
        assert result.status == "rolled-back"
        assert result.rollback_reason == "lock-timeout"
        assert result.post_digest == plan.source_digest

    def test_strict_mode_raises(self):
        system, _, _, deployer = build(
            gates=(("bad", lambda: False),), strict=True
        )
        with pytest.raises(ProcessError) as excinfo:
            drive(system, deployer)
        cause = excinfo.value
        while cause.__cause__ is not None:
            cause = cause.__cause__
        assert isinstance(cause, StageAbortedError)
        assert cause.reason == "invariant-violation"
        # The result object stays inspectable after the raise.
        assert deployer.result.status == "rolled-back"
