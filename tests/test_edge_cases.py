"""Edge-case tests across modules (the long tail of behaviours)."""

import pytest

from repro.core.moveblock import MoveBlock
from repro.core.policies.placement import TransientPlacement
from repro.errors import ConfigurationError
from repro.network.latency import DeterministicLatency
from repro.network.topology import FullyConnected, Grid, Ring
from repro.runtime.system import DistributedSystem
from repro.sim.kernel import Environment, Infinity
from repro.sim.stats import RunningStats, TimeWeightedStats
from repro.workload.clientserver import ClientServerWorkload, WorkloadRunner
from repro.workload.params import SimulationParameters


class TestKernelEdges:
    def test_infinity_export(self):
        assert Infinity == float("inf")

    def test_run_empty_calendar_returns_none(self, env):
        assert env.run() is None
        assert env.now == 0.0

    def test_many_same_time_events_all_fire(self, env):
        fired = []
        for i in range(500):
            env.timeout(1.0).callbacks.append(
                lambda e, i=i: fired.append(i)
            )
        env.run()
        assert fired == list(range(500))

    def test_deeply_chained_processes(self, env):
        """A 200-deep chain of processes waiting on each other."""

        def link(env, depth):
            if depth == 0:
                yield env.timeout(1)
                return 0
            value = yield env.process(link(env, depth - 1))
            return value + 1

        p = env.process(link(env, 200))
        env.run()
        assert p.value == 200

    def test_fractional_and_tiny_delays(self, env):
        times = []
        for delay in (1e-9, 0.5, 1e-12):
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: times.append((env.now, d))
            )
        env.run()
        assert [d for _, d in times] == [1e-12, 1e-9, 0.5]


class TestTopologyEdges:
    def test_two_node_grid(self):
        grid = Grid(2)
        assert grid.hops(0, 1) == 1

    def test_single_node_everything(self):
        for cls in (FullyConnected, Ring, Grid):
            t = cls(1)
            assert t.hops(0, 0) == 0
            assert t.neighbors(0) == []

    def test_ring_three_nodes(self):
        ring = Ring(3)
        assert ring.diameter() == 1
        assert sorted(ring.neighbors(0)) == [1, 2]


class TestStatsEdges:
    def test_single_value_stats(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.min == s.max == 5.0
        assert s.variance == 0.0

    def test_time_weighted_repeated_updates_same_instant(self):
        tw = TimeWeightedStats()
        tw.update(10, now=5)
        tw.update(20, now=5)  # zero-width interval: allowed
        assert tw.mean(10) == pytest.approx((0 * 5 + 20 * 5) / 10)

    def test_extreme_magnitudes(self):
        s = RunningStats()
        for v in (1e15, 1e15 + 1, 1e15 + 2):
            s.add(v)
        assert s.mean == pytest.approx(1e15 + 1)
        assert s.variance == pytest.approx(1.0, rel=0.2)


class TestRuntimeEdges:
    def test_zero_latency_network(self):
        system = DistributedSystem(
            nodes=2, latency=DeterministicLatency(0.0)
        )
        server = system.create_server(node=1)

        def caller(env):
            result = yield from system.invocations.invoke(0, server)
            return result

        p = system.env.process(caller(system.env))
        system.env.run()
        # Zero-latency remote messages still count as remote but the
        # call is instantaneous.
        assert p.value.duration == 0.0
        assert system.network.remote_messages == 2

    def test_many_objects_one_node(self):
        system = DistributedSystem(nodes=1)
        objs = [system.create_server(node=0) for _ in range(200)]
        assert system.registry.node(0).population == 200
        system.registry.check_consistency()

    def test_placement_self_conflict_two_blocks_same_client(self):
        """Two blocks from the same client node: second is rejected,
        exactly like a foreign conflict (locks are per-block)."""
        system = DistributedSystem(
            nodes=2, latency=DeterministicLatency(1.0)
        )
        policy = TransientPlacement(system)
        server = system.create_server(node=1)

        def proc(env):
            b1 = MoveBlock(0, server)
            yield from policy.move(b1)
            b2 = MoveBlock(0, server)
            yield from policy.move(b2)
            return b1, b2

        p = system.env.process(proc(system.env))
        system.env.run()
        b1, b2 = p.value
        assert b1.granted
        assert not b2.granted  # even though it is already local


class TestWorkloadEdges:
    def test_zero_intercall_time(self, tiny_stopping):
        params = SimulationParameters(
            mean_intercall_time=0.0, policy="placement", seed=0
        )
        workload = ClientServerWorkload(params, stopping=tiny_stopping)
        result = workload.run()
        assert result.mean_communication_time_per_call >= 0.0

    def test_zero_interblock_time_is_max_concurrency(self, tiny_stopping):
        params = SimulationParameters(
            mean_interblock_time=0.0, policy="placement", seed=0
        )
        result = ClientServerWorkload(params, stopping=tiny_stopping).run()
        assert result.raw["metrics"]["blocks"] > 0

    def test_single_node_system_all_local(self, tiny_stopping):
        params = SimulationParameters(
            nodes=1, clients=2, servers_layer1=2, policy="sedentary", seed=0
        )
        result = ClientServerWorkload(params, stopping=tiny_stopping).run()
        assert result.mean_communication_time_per_call == 0.0

    def test_more_clients_than_nodes(self, tiny_stopping):
        params = SimulationParameters(
            nodes=2, clients=9, policy="placement", seed=0
        )
        workload = ClientServerWorkload(params, stopping=tiny_stopping)
        assert {c.node_id for c in workload.clients} == {0, 1}
        workload.run()

    def test_runner_max_time_cap(self, tiny_stopping, monkeypatch):
        """The safety net fires if the stopping rule cannot converge."""
        monkeypatch.setattr(WorkloadRunner, "MAX_TIME", 4_000.0)
        params = SimulationParameters(policy="sedentary", seed=0)
        workload = ClientServerWorkload(params)  # paper-tight stopping
        result = workload.run()
        assert result.simulated_time <= 4_000.0 + WorkloadRunner.CHUNK
