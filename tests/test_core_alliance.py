"""Unit tests for alliances (cooperation contexts)."""

import pytest

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.errors import AllianceError
from repro.runtime.objects import DistributedObject


@pytest.fixture
def objects(env):
    return [
        DistributedObject(env, object_id=i, node_id=0, name=f"o{i}")
        for i in range(6)
    ]


@pytest.fixture
def manager():
    return AllianceManager()


class TestMembership:
    def test_admit_and_contains(self, manager, objects):
        a = manager.create("team")
        a.admit(objects[0])
        assert objects[0] in a
        assert objects[1] not in a
        assert len(a) == 1

    def test_admit_idempotent(self, manager, objects):
        a = manager.create()
        a.admit(objects[0])
        a.admit(objects[0])
        assert len(a) == 1

    def test_members_sorted(self, manager, objects):
        a = manager.create()
        a.admit(objects[3])
        a.admit(objects[1])
        assert [m.object_id for m in a.members] == [1, 3]

    def test_expel_removes_member_and_edges(self, manager, objects):
        a = manager.create()
        for obj in objects[:3]:
            a.admit(obj)
        a.attach(objects[1], objects[0])
        a.attach(objects[2], objects[0])
        a.expel(objects[0])
        assert objects[0] not in a
        assert a.partners_of(objects[1]) == []

    def test_expel_non_member_raises(self, manager, objects):
        a = manager.create()
        with pytest.raises(AllianceError):
            a.expel(objects[0])

    def test_object_in_multiple_alliances(self, manager, objects):
        a1, a2 = manager.create("a1"), manager.create("a2")
        a1.admit(objects[0])
        a2.admit(objects[0])
        assert manager.alliances_of(objects[0]) == [a1, a2]


class TestScopedAttachment:
    def test_attach_requires_membership(self, manager, objects):
        a = manager.create()
        a.admit(objects[0])
        with pytest.raises(AllianceError, match="not a member"):
            a.attach(objects[0], objects[1])

    def test_working_set_is_a_transitive_closure(self, manager, objects):
        """The §3.4 scenario: a shared object belongs to two alliances;
        each alliance's working set stays its own."""
        s1, s2, w1, shared, w2 = objects[:5]
        a1, a2 = manager.create("ws1"), manager.create("ws2")
        for obj in (s1, w1, shared):
            a1.admit(obj)
        for obj in (s2, shared, w2):
            a2.admit(obj)
        a1.attach(w1, s1)
        a1.attach(shared, s1)
        a2.attach(shared, s2)
        a2.attach(w2, s2)

        assert set(a1.working_set(s1)) == {s1, w1, shared}
        assert set(a2.working_set(s2)) == {s2, shared, w2}
        # Unrestricted closure over the same graph chains everything.
        assert set(manager.attachments.closure(s1)) == {s1, s2, w1, shared, w2}

    def test_partners_scoped(self, manager, objects):
        a1, a2 = manager.create(), manager.create()
        x, y, z = objects[:3]
        for a in (a1, a2):
            for o in (x, y, z):
                a.admit(o)
        a1.attach(x, y)
        a2.attach(x, z)
        assert a1.partners_of(x) == [y]
        assert a2.partners_of(x) == [z]

    def test_detach_scoped(self, manager, objects):
        a = manager.create()
        a.admit(objects[0])
        a.admit(objects[1])
        a.attach(objects[0], objects[1])
        assert a.detach(objects[0], objects[1])
        assert a.partners_of(objects[0]) == []


class TestManager:
    def test_get_by_id(self, manager):
        a = manager.create("x")
        assert manager.get(a.alliance_id) is a

    def test_get_unknown_raises(self, manager):
        with pytest.raises(AllianceError):
            manager.get(99)

    def test_default_graph_is_a_transitive(self, manager):
        assert manager.attachments.mode is AttachmentMode.A_TRANSITIVE

    def test_shared_graph_respected(self):
        graph = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        manager = AllianceManager(graph)
        assert manager.attachments is graph

    def test_alliance_names(self, manager):
        named = manager.create("custom")
        unnamed = manager.create()
        assert named.name == "custom"
        assert unnamed.name.startswith("alliance-")
