"""Unit tests for the ASCII plot renderer."""

import pytest

from repro.experiments.config import ExperimentDef, SeriesDef
from repro.experiments.plot import MARKERS, _interpolate, _scale, render_plot
from repro.experiments.runner import ExperimentResult
from repro.workload.clientserver import WorkloadResult
from repro.workload.params import SimulationParameters


def fake_result(
    series: dict, x_values=(1.0, 2.0, 3.0), exp_id: str = "fake"
) -> ExperimentResult:
    """Build an ExperimentResult from literal y-value lists."""
    params = SimulationParameters()
    defn = ExperimentDef(
        exp_id=exp_id,
        title="Fake",
        x_label="x",
        x_values=tuple(x_values),
        series=tuple(
            SeriesDef(label, lambda x: params) for label in series
        ),
    )
    result = ExperimentResult(definition=defn)
    for label, ys in series.items():
        result.results[label] = [
            WorkloadResult(
                params=params,
                mean_communication_time_per_call=y,
                mean_call_duration=y,
                mean_migration_time_per_call=0.0,
                simulated_time=0.0,
            )
            for y in ys
        ]
    return result


class TestScale:
    def test_bounds(self):
        assert _scale(0.0, 0.0, 10.0, 5) == 0
        assert _scale(10.0, 0.0, 10.0, 5) == 4
        assert _scale(5.0, 0.0, 10.0, 5) == 2

    def test_degenerate_range(self):
        assert _scale(7.0, 3.0, 3.0, 10) == 0

    def test_clamping(self):
        assert _scale(-5.0, 0.0, 1.0, 4) == 0
        assert _scale(99.0, 0.0, 1.0, 4) == 3


class TestInterpolate:
    def test_endpoint_preservation(self):
        pts = _interpolate([0, 10], [0, 100], samples=11)
        assert pts[0] == (0, 0)
        assert pts[-1] == (10, 100)

    def test_linear_midpoint(self):
        pts = _interpolate([0, 10], [0, 100], samples=11)
        assert pts[5] == pytest.approx((5.0, 50.0))

    def test_single_point(self):
        assert _interpolate([3], [7], samples=10) == [(3, 7)]

    def test_multi_segment(self):
        pts = _interpolate([0, 1, 2], [0, 10, 0], samples=21)
        ys = [y for _, y in pts]
        assert max(ys) == pytest.approx(10.0)
        assert ys[0] == ys[-1] == 0.0


class TestRender:
    def test_contains_title_axis_legend(self):
        result = fake_result({"a": [1, 2, 3], "b": [3, 2, 1]})
        out = render_plot(result)
        assert "fake: Fake" in out
        assert "x" in out
        assert f"{MARKERS[0]}  a" in out
        assert f"{MARKERS[1]}  b" in out

    def test_markers_drawn(self):
        result = fake_result({"a": [1, 1, 1]})
        out = render_plot(result)
        assert MARKERS[0] in out

    def test_rising_curve_occupies_higher_rows(self):
        result = fake_result({"a": [0.0, 0.0, 10.0]})
        lines = render_plot(result, height=10).splitlines()
        plot_lines = [l for l in lines if "|" in l]
        top_half = "".join(plot_lines[: len(plot_lines) // 2])
        bottom_half = "".join(plot_lines[len(plot_lines) // 2:])
        assert MARKERS[0] in top_half
        assert MARKERS[0] in bottom_half

    def test_too_small_rejected(self):
        result = fake_result({"a": [1, 2, 3]})
        with pytest.raises(ValueError):
            render_plot(result, width=5)
        with pytest.raises(ValueError):
            render_plot(result, height=2)

    def test_flat_zero_curve(self):
        result = fake_result({"a": [0.0, 0.0, 0.0]})
        out = render_plot(result)
        assert MARKERS[0] in out  # degenerate y-range handled
