"""Tests for the heartbeat failure detector."""

import pytest

from repro.availability import FaultInjector
from repro.network.faults import LinkFaultModel
from repro.runtime.failure import FailureDetector
from repro.runtime.system import DistributedSystem


def build(nodes=4, seed=0, fault_model=None, **kw):
    system = DistributedSystem(nodes=nodes, seed=seed, fault_model=fault_model)
    faults = FaultInjector(system, mttf=0)
    detector = FailureDetector(system, faults=faults, **kw)
    return system, faults, detector


class TestValidation:
    def test_interval_must_be_positive(self):
        system = DistributedSystem(nodes=2)
        with pytest.raises(ValueError, match="interval"):
            FailureDetector(system, interval=0)

    def test_timeout_must_be_positive(self):
        system = DistributedSystem(nodes=2)
        with pytest.raises(ValueError, match="timeout"):
            FailureDetector(system, timeout=-1)

    def test_phi_threshold_must_be_positive(self):
        system = DistributedSystem(nodes=2)
        with pytest.raises(ValueError, match="phi_threshold"):
            FailureDetector(system, phi_threshold=0)

    def test_window_must_hold_two_samples(self):
        system = DistributedSystem(nodes=2)
        with pytest.raises(ValueError, match="window"):
            FailureDetector(system, window=1)


class TestFaultFree:
    def test_no_suspicion_without_faults(self):
        system, faults, detector = build()
        faults.start()
        detector.start()
        system.run(until=500)
        assert detector.suspicions == 0
        assert detector.false_suspicions == 0
        assert detector.suspected_nodes() == set()
        assert detector.heartbeats_received > 0
        assert detector.heartbeats_lost == 0

    def test_unmonitored_node_assumed_up(self):
        system, _, detector = build()
        # Never started: no evidence about anyone, so nobody is down.
        assert not detector.is_down(0)
        assert not detector.is_down(99)

    def test_start_is_idempotent(self):
        system, faults, detector = build()
        detector.start()
        detector.start()
        system.run(until=50)
        # One heartbeat process per node, not two: per-node counters
        # would double if start() were not idempotent.
        expected = system.node_count * int(50 / detector.interval)
        assert detector.heartbeats_sent <= expected


class TestCrashDetection:
    def test_crash_suspected_then_cleared(self):
        system, faults, detector = build(interval=1.0, timeout=15.0)
        faults.start()
        detector.start()
        system.run(until=50)
        faults.crash(2)
        system.run(until=80)
        assert detector.is_down(2)
        assert 2 in detector.suspected_nodes()
        assert detector.suspicions >= 1
        # The node really is down: not a false suspicion.
        assert detector.false_suspicions == 0
        faults.recover(2)
        system.run(until=120)
        assert not detector.is_down(2)
        assert detector.suspicions_cleared >= 1

    def test_fresh_crash_not_yet_suspected(self):
        # Detection has a lag of up to `timeout`: a just-crashed node
        # is still considered up (the detector can be wrong in both
        # directions).
        system, faults, detector = build(interval=1.0, timeout=15.0)
        faults.start()
        detector.start()
        system.run(until=50)
        faults.crash(2)
        system.run(until=52)
        assert faults.is_down(2)
        assert not detector.is_down(2)


class TestFalseSuspicion:
    def test_partition_causes_recoverable_false_suspicion(self):
        fault_model = LinkFaultModel()
        system, faults, detector = build(
            fault_model=fault_model, interval=1.0, timeout=10.0
        )
        faults.start()
        detector.start()
        system.run(until=20)
        # Silence node 3 towards the monitor: its heartbeats all drop.
        fault_model.fail_link(3, 0)
        system.run(until=60)
        assert detector.is_down(3)
        assert not faults.is_down(3)  # the node is perfectly healthy
        assert detector.false_suspicions >= 1
        assert detector.heartbeats_lost > 0
        # Connectivity returns: the next heartbeat clears the suspicion.
        fault_model.restore_link(3, 0)
        system.run(until=100)
        assert not detector.is_down(3)
        assert detector.suspicions_cleared >= 1


class TestPhiAccrual:
    def test_phi_grows_with_silence(self):
        fault_model = LinkFaultModel()
        system, faults, detector = build(
            fault_model=fault_model, interval=1.0, phi_threshold=3.0
        )
        faults.start()
        detector.start()
        system.run(until=30)
        fault_model.fail_link(2, 0)
        system.run(until=35)
        early = detector.phi(2)
        system.run(until=55)
        late = detector.phi(2)
        assert late > early > 0.0

    def test_phi_mode_suspects_and_recovers(self):
        fault_model = LinkFaultModel()
        system, faults, detector = build(
            fault_model=fault_model, interval=1.0, phi_threshold=3.0
        )
        faults.start()
        detector.start()
        system.run(until=30)
        assert detector.suspected_nodes() == set()
        fault_model.fail_link(2, 0)
        system.run(until=80)
        assert detector.is_down(2)
        fault_model.restore_link(2, 0)
        system.run(until=120)
        assert not detector.is_down(2)

    def test_phi_zero_without_evidence(self):
        system, _, detector = build(phi_threshold=3.0)
        assert detector.phi(1) == 0.0


class TestWiring:
    def test_install_failure_detector(self):
        system = DistributedSystem(nodes=3, seed=0)
        detector = system.install_failure_detector()
        assert system.invocations.failure_detector is detector

    def test_install_wires_locator_health(self):
        from repro.network.network import Network
        from repro.runtime.locator import ForwardingLocator
        from repro.sim.kernel import Environment
        from repro.sim.rng import RandomStreams

        env = Environment()
        streams = RandomStreams(0)
        from repro.network.latency import DeterministicLatency
        from repro.network.topology import FullyConnected

        net = Network(
            env,
            topology=FullyConnected(3),
            latency=DeterministicLatency(1.0),
            streams=streams,
        )
        system = DistributedSystem(
            nodes=3, seed=0, env=env, locator=ForwardingLocator(env, net)
        )
        detector = system.install_failure_detector()
        assert system.locator.health is detector

    def test_stats_keys(self):
        system, faults, detector = build()
        faults.start()
        detector.start()
        system.run(until=30)
        stats = detector.stats()
        assert set(stats) == {
            "heartbeats_sent",
            "heartbeats_received",
            "heartbeats_lost",
            "suspicions",
            "false_suspicions",
            "suspicions_cleared",
        }
        assert stats["heartbeats_sent"] >= stats["heartbeats_received"]


class TestDeterminism:
    def test_same_seed_same_counters(self):
        def run(seed):
            fault_model = LinkFaultModel(loss_probability=0.1)
            system, faults, detector = build(
                seed=seed, fault_model=fault_model, interval=1.0, timeout=8.0
            )
            faults.start()
            detector.start()
            system.run(until=300)
            return detector.stats()

        assert run(7) == run(7)
        assert run(7) != run(8)
