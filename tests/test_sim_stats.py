"""Unit tests for the statistics accumulators."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.sim.stats import (
    BatchMeans,
    RunningStats,
    TimeWeightedStats,
    normal_ppf,
    student_t_ppf,
)


class TestNormalPpf:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.025, 0.5, 0.9, 0.975, 0.995, 0.9999])
    def test_matches_scipy(self, p):
        assert normal_ppf(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-8)

    def test_symmetry(self):
        assert normal_ppf(0.3) == pytest.approx(-normal_ppf(0.7), abs=1e-9)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
    def test_domain_errors(self, p):
        with pytest.raises(ValueError):
            normal_ppf(p)


class TestStudentTPpf:
    @pytest.mark.parametrize("dof", [3, 5, 10, 30, 100])
    @pytest.mark.parametrize("p", [0.95, 0.975, 0.995])
    def test_matches_scipy(self, dof, p):
        expected = scipy_stats.t.ppf(p, dof)
        assert student_t_ppf(p, dof) == pytest.approx(expected, rel=2e-3)

    def test_converges_to_normal(self):
        assert student_t_ppf(0.99, 10**7) == pytest.approx(
            normal_ppf(0.99), rel=1e-6
        )

    def test_dof_must_be_positive(self):
        with pytest.raises(ValueError):
            student_t_ppf(0.9, 0)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0
        assert s.sem == math.inf

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=1000)
        s = RunningStats()
        for v in data:
            s.add(v)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.min == pytest.approx(np.min(data))
        assert s.max == pytest.approx(np.max(data))
        assert s.total == pytest.approx(np.sum(data))

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=100), rng.normal(loc=3, size=57)
        sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
        for v in a:
            sa.add(v)
        for v in b:
            sb.add(v)
        for v in np.concatenate([a, b]):
            sc.add(v)
        sa.merge(sb)
        assert sa.count == sc.count
        assert sa.mean == pytest.approx(sc.mean)
        assert sa.variance == pytest.approx(sc.variance)

    def test_merge_with_empty(self):
        s = RunningStats()
        s.add(1.0)
        s.merge(RunningStats())
        assert s.count == 1
        empty = RunningStats()
        empty.merge(s)
        assert empty.count == 1
        assert empty.mean == 1.0

    def test_confidence_halfwidth_matches_t_interval(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=50)
        s = RunningStats()
        for v in data:
            s.add(v)
        t = scipy_stats.t.ppf(0.995, 49)
        expected = t * np.std(data, ddof=1) / np.sqrt(50)
        assert s.confidence_halfwidth(0.99) == pytest.approx(expected, rel=2e-3)

    def test_halfwidth_infinite_for_single_sample(self):
        s = RunningStats()
        s.add(1.0)
        assert s.confidence_halfwidth() == math.inf


class TestTimeWeightedStats:
    def test_constant_signal(self):
        s = TimeWeightedStats(initial_value=4.0)
        assert s.mean(10) == 4.0

    def test_step_signal(self):
        s = TimeWeightedStats(initial_value=0.0)
        s.update(10.0, now=5.0)  # 0 for [0,5), 10 afterwards
        assert s.mean(10.0) == pytest.approx(5.0)

    def test_tracks_max(self):
        s = TimeWeightedStats()
        s.update(3, now=1)
        s.update(7, now=2)
        s.update(2, now=3)
        assert s.max == 7

    def test_time_backwards_rejected(self):
        s = TimeWeightedStats()
        s.update(1, now=5)
        with pytest.raises(ValueError):
            s.update(2, now=4)

    def test_mean_at_start_time(self):
        s = TimeWeightedStats(initial_value=2.0, start_time=3.0)
        assert s.mean(3.0) == 2.0


class TestBatchMeans:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BatchMeans(batch_size=0)
        with pytest.raises(ValueError):
            BatchMeans(warmup=-1)

    def test_warmup_discarded(self):
        bm = BatchMeans(batch_size=2, warmup=3)
        for v in [100, 100, 100, 1, 2, 3, 4]:
            bm.add(v)
        assert bm.observation_count == 4
        assert bm.mean == pytest.approx(2.5)

    def test_batch_count(self):
        bm = BatchMeans(batch_size=5)
        for v in range(17):
            bm.add(v)
        assert bm.batch_count == 3  # 2 observations left in partial batch

    def test_halfwidth_infinite_below_two_batches(self):
        bm = BatchMeans(batch_size=10)
        for v in range(10):
            bm.add(v)
        assert bm.confidence_halfwidth() == math.inf

    def test_iid_data_ci_covers_mean(self):
        rng = np.random.default_rng(3)
        bm = BatchMeans(batch_size=100)
        for v in rng.exponential(2.0, size=20000):
            bm.add(v)
        low, high = bm.interval(0.99)
        assert low < 2.0 < high

    def test_relative_halfwidth_near_zero_mean(self):
        bm = BatchMeans(batch_size=2)
        for v in [1, -1, 1, -1, 1, -1]:
            bm.add(v)
        assert bm.relative_halfwidth() == math.inf
