"""Unit tests for the migration service."""

import pytest

from repro.errors import ObjectFixedError, ProcessError, UnknownNodeError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem
from repro.sim.trace import Tracer


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
        tracer=Tracer(),
    )


def migrate(system, objects, target):
    def proc(env):
        outcome = yield from system.migrations.migrate(objects, target)
        return outcome

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


def root_cause(exc):
    """Unwrap nested ProcessError chains to the original exception."""
    while isinstance(exc, ProcessError) and exc.__cause__ is not None:
        exc = exc.__cause__
    return exc


class TestSingleObject:
    def test_transfer_takes_m(self, system):
        server = system.create_server(node=0)
        outcome = migrate(system, [server], 3)
        assert system.env.now == pytest.approx(6.0)
        assert outcome.elapsed == pytest.approx(6.0)
        assert outcome.transfer_time == pytest.approx(6.0)
        assert outcome.moved == [server]
        assert server.node_id == 3
        system.registry.check_consistency()

    def test_already_at_target_is_free(self, system):
        server = system.create_server(node=2)
        outcome = migrate(system, [server], 2)
        assert system.env.now == 0.0
        assert outcome.moved == []
        assert outcome.already_there == [server]

    def test_size_scales_duration(self, system):
        big = system.create_server(node=0, size=2.0)
        outcome = migrate(system, [big], 1)
        assert outcome.transfer_time == pytest.approx(12.0)

    def test_fixed_object_rejected(self, system):
        client = system.create_client(node=0)
        with pytest.raises(ProcessError) as exc_info:
            migrate(system, [client], 1)
        assert isinstance(root_cause(exc_info.value), ObjectFixedError)

    def test_unknown_target_node(self, system):
        server = system.create_server(node=0)
        with pytest.raises(ProcessError) as exc_info:
            migrate(system, [server], 42)
        assert isinstance(root_cause(exc_info.value), UnknownNodeError)

    def test_accounting(self, system):
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        migrate(system, [a, b], 2)
        assert system.migrations.migration_count == 2
        assert system.migrations.total_transfer_time == pytest.approx(12.0)


class TestSetMigration:
    def test_parallel_transfer_elapsed_is_max(self, system):
        objs = [system.create_server(node=i) for i in range(3)]
        outcome = migrate(system, objs, 3)
        # All transfer concurrently: elapsed M, work 3*M.
        assert outcome.elapsed == pytest.approx(6.0)
        assert outcome.transfer_time == pytest.approx(18.0)
        assert outcome.moved_count == 3
        assert all(o.node_id == 3 for o in objs)

    def test_mixed_set_skips_residents(self, system):
        here = system.create_server(node=3)
        away = system.create_server(node=0)
        outcome = migrate(system, [here, away], 3)
        assert outcome.moved == [away]
        assert outcome.already_there == [here]


class TestConcurrentMigrations:
    def test_second_migration_waits_then_steals(self, system):
        server = system.create_server(node=0)

        def first(env):
            yield from system.migrations.migrate([server], 1)

        def second(env):
            yield env.timeout(2)
            outcome = yield from system.migrations.migrate([server], 2)
            return (env.now, outcome)

        system.env.process(first(system.env))
        p = system.env.process(second(system.env))
        system.env.run()
        end, outcome = p.value
        # Second waits for install at t=6, then transfers 6 more.
        assert end == pytest.approx(12.0)
        assert server.node_id == 2
        assert server.migration_count == 2
        system.registry.check_consistency()

    def test_waiter_that_finds_object_at_target_skips(self, system):
        server = system.create_server(node=0)

        def first(env):
            yield from system.migrations.migrate([server], 1)

        def second(env):
            yield env.timeout(2)
            outcome = yield from system.migrations.migrate([server], 1)
            return (env.now, outcome)

        system.env.process(first(system.env))
        p = system.env.process(second(system.env))
        system.env.run()
        end, outcome = p.value
        assert end == pytest.approx(6.0)  # waited, then nothing to do
        assert outcome.moved == []
        assert server.migration_count == 1

    def test_simultaneous_migrations_serialize(self, system):
        server = system.create_server(node=0)
        results = []

        def mover(env, target):
            outcome = yield from system.migrations.migrate([server], target)
            results.append((env.now, target, outcome.moved_count))

        system.env.process(mover(system.env, 1))
        system.env.process(mover(system.env, 2))
        system.env.run()
        assert results == [(6.0, 1, 1), (12.0, 2, 1)]
        assert server.node_id == 2

    def test_trace_records_start_and_done(self, system):
        server = system.create_server(node=0)
        migrate(system, [server], 1)
        assert system.tracer.count("migration.start") == 1
        assert system.tracer.count("migration.done") == 1


class TestZeroDuration:
    def test_m_zero_still_moves(self):
        system = DistributedSystem(
            nodes=2, migration_duration=0.0, latency=DeterministicLatency(1.0)
        )
        server = system.create_server(node=0)

        def proc(env):
            outcome = yield from system.migrations.migrate([server], 1)
            return outcome

        p = system.env.process(proc(system.env))
        system.env.run()
        assert p.value.moved == [server]
        assert server.node_id == 1
        assert p.value.transfer_time == 0.0
