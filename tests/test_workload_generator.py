"""Unit tests for the move-block timing generator."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.workload.generator import BlockTimingGenerator
from repro.workload.params import SimulationParameters


@pytest.fixture
def generator():
    params = SimulationParameters(
        mean_calls_per_block=8.0,
        mean_intercall_time=1.0,
        mean_interblock_time=30.0,
    )
    return BlockTimingGenerator(params, RandomStreams(0).stream("t"))


class TestPlans:
    def test_plan_shape(self, generator):
        plan = generator.next_plan()
        assert plan.calls >= 1
        assert len(plan.intercall_times) == plan.calls
        assert plan.lead_time >= 0

    def test_call_count_mean(self, generator):
        draws = [generator.next_plan().calls for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(8.0, rel=0.1)

    def test_lead_time_mean(self, generator):
        draws = [generator.next_plan().lead_time for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(30.0, rel=0.1)

    def test_intercall_mean(self, generator):
        gaps = []
        for _ in range(2000):
            gaps.extend(generator.next_plan().intercall_times)
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.1)

    def test_deterministic_given_stream(self):
        params = SimulationParameters()

        def draw(seed):
            gen = BlockTimingGenerator(
                params, RandomStreams(seed).stream("t")
            )
            return [gen.next_plan().calls for _ in range(10)]

        assert draw(1) == draw(1)
        assert draw(1) != draw(2)
