"""Property-based tests for the statistics substrate."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import BatchMeans, RunningStats, normal_ppf, student_t_cdf, student_t_ppf

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(floats, min_size=1, max_size=200)


@given(samples)
def test_welford_matches_numpy(data):
    s = RunningStats()
    for v in data:
        s.add(v)
    assert s.count == len(data)
    assert s.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-6)
    if len(data) >= 2:
        assert s.variance == pytest.approx(
            np.var(data, ddof=1), rel=1e-6, abs=1e-6
        )
    assert s.min == min(data)
    assert s.max == max(data)


@given(samples, samples)
def test_merge_equals_concatenation(a, b):
    sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
    for v in a:
        sa.add(v)
    for v in b:
        sb.add(v)
    for v in a + b:
        sc.add(v)
    sa.merge(sb)
    assert sa.count == sc.count
    assert sa.mean == pytest.approx(sc.mean, rel=1e-9, abs=1e-6)
    assert sa.variance == pytest.approx(sc.variance, rel=1e-6, abs=1e-6)


@given(samples)
def test_variance_nonnegative(data):
    s = RunningStats()
    for v in data:
        s.add(v)
    assert s.variance >= 0.0


@given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
def test_normal_ppf_roundtrip(p):
    """Phi(Phi^-1(p)) == p."""
    x = normal_ppf(p)
    back = 0.5 * math.erfc(-x / math.sqrt(2))
    assert back == pytest.approx(p, rel=1e-7, abs=1e-9)


@given(
    st.floats(min_value=0.001, max_value=0.999),
    st.integers(min_value=1, max_value=200),
)
def test_t_ppf_roundtrip(p, dof):
    """F(F^-1(p)) == p for the Student-t distribution."""
    x = student_t_ppf(p, dof)
    assert student_t_cdf(x, dof) == pytest.approx(p, abs=1e-8)


@given(
    st.integers(min_value=2, max_value=200),
    st.floats(min_value=0.5, max_value=0.999),
)
def test_t_quantile_heavier_than_normal(dof, p):
    """For p > 0.5 the t quantile exceeds the normal quantile."""
    assert student_t_ppf(p, dof) >= normal_ppf(p) - 1e-12


@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    st.integers(min_value=1, max_value=20),
)
def test_batch_means_grand_mean_matches(data, batch_size):
    bm = BatchMeans(batch_size=batch_size, warmup=0)
    for v in data:
        bm.add(v)
    assert bm.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-6)
    assert bm.batch_count == len(data) // batch_size
