"""Tests for the fault-tolerance workload and the FaultInjector fixes."""

import pytest

from repro.availability import (
    FaultInjector,
    FaultToleranceParameters,
    FaultToleranceWorkload,
    run_faulttolerance_cell,
)
from repro.errors import ConfigurationError
from repro.runtime.system import DistributedSystem


class TestParameters:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(nodes=1), "two nodes"),
            (dict(clients=0), "one client"),
            (dict(servers=0), "one server"),
            (dict(policy="teleport"), "policy must be"),
            (dict(lease_duration=0.0), "lease_duration"),
            (dict(policy="migration", lease_duration=5.0), "only applies"),
            (dict(loss=1.0), "loss"),
            (dict(mttr=0.0), "mttr"),
            (dict(mean_block_calls=0.0), "mean_block_calls"),
            (dict(sim_time=0.0), "sim_time"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            FaultToleranceParameters(**kwargs).validate()


class TestWorkload:
    def test_fault_free_cell_runs_every_policy(self):
        durations = {}
        for policy in ("sedentary", "migration", "placement"):
            result = run_faulttolerance_cell(
                FaultToleranceParameters(policy=policy, sim_time=600.0)
            )
            assert result.completed_blocks > 0
            assert result.mean_call_duration > 0.0
            assert result.throughput > 0.0
            # No faults configured: none of the machinery fired.
            assert result.failed_calls == 0
            assert result.retries == 0
            assert result.migrations_aborted == 0
            assert result.node_failures == 0
            durations[policy] = result.mean_call_duration
        # The paper's fault-free ordering survives in miniature.
        assert durations["placement"] < durations["migration"]

    def test_deterministic_given_seed(self):
        params = FaultToleranceParameters(
            policy="placement",
            lease_duration=60.0,
            mttf=150.0,
            loss=0.02,
            sim_time=500.0,
            seed=11,
        )
        a = run_faulttolerance_cell(params)
        b = run_faulttolerance_cell(params)
        assert a.mean_call_duration == b.mean_call_duration
        assert a.completed_blocks == b.completed_blocks
        assert a.retries == b.retries

    def test_crashes_leak_locks_and_leases_reclaim_them(self):
        base = dict(policy="placement", mttf=100.0, sim_time=2_000.0)
        unleased = run_faulttolerance_cell(FaultToleranceParameters(**base))
        leased = run_faulttolerance_cell(
            FaultToleranceParameters(lease_duration=60.0, **base)
        )
        # Both regimes saw crashes and abandoned blocks...
        assert unleased.abandoned_blocks > 0
        assert leased.abandoned_blocks > 0
        # ...but only the leased manager ever reclaims anything.
        assert unleased.locks_expired == unleased.locks_broken == 0
        assert leased.locks_expired + leased.locks_broken > 0

    def test_loss_engages_retry_machinery(self):
        result = run_faulttolerance_cell(
            FaultToleranceParameters(
                policy="placement",
                lease_duration=60.0,
                loss=0.05,
                sim_time=1_000.0,
            )
        )
        assert result.retries > 0
        assert result.raw["dropped_messages"] > 0
        # Retries keep actual call failures rare.
        assert result.failed_calls <= result.raw["calls"] * 0.01

    def test_workload_start_is_idempotent(self):
        workload = FaultToleranceWorkload(
            FaultToleranceParameters(sim_time=100.0)
        )
        workload.start()
        workload.start()
        result = workload.run()
        assert result.params.clients == 6


class TestFaultInjectorLateNodes:
    def test_late_added_node_does_not_keyerror(self):
        # Regression: nodes added after the injector was built used to
        # KeyError in availability_of()/recovered().
        system = DistributedSystem(nodes=2, seed=0)
        injector = FaultInjector(system)
        late = system.add_node()
        assert injector.availability_of(late.node_id) == 1.0
        assert injector.recovered(late.node_id) is not None

    def test_restart_picks_up_new_nodes(self):
        system = DistributedSystem(nodes=2, seed=0, migration_duration=0.0)
        injector = FaultInjector(system, mttf=10.0, mttr=5.0)
        injector.start()
        late = system.add_node()
        injector.start()  # idempotent for old nodes, starts the new one
        system.run(until=200.0)
        # The late node's life process really runs: it has failed by now.
        assert injector.availability_of(late.node_id) < 1.0

    def test_injector_wires_itself_as_health_provider(self):
        system = DistributedSystem(nodes=2, seed=0)
        injector = FaultInjector(system)
        assert system.migrations.health is injector
