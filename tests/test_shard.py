"""Unit tests for the sharded-kernel building blocks.

Covers the plan/partition math, the cross-shard message records and
their merge order, the shifted-exponential latency model, the
ShardRouter protocol, the worker-count clamping (REPRO_MAX_WORKERS)
and the configurable sleep-pool cap.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import max_workers_cap, resolve_workers
from repro.network.latency import (
    DeterministicLatency,
    NormalizedExponentialLatency,
    ShiftedExponentialLatency,
)
from repro.network.shardrouter import ShardRouter
from repro.sim.kernel import _SLEEP_POOL_MAX, Environment
from repro.sim.rng import RandomStreams
from repro.sim.shard.hotspot import hotspot_params, hotspot_plan
from repro.sim.shard.messages import (
    RemoteCall,
    RemoteReply,
    WindowBatch,
    merge_key,
    route_batches,
)
from repro.sim.shard.partition import ShardPlan, effective_shards
from repro.sim.shard.runner import run_sharded_cell
from repro.sim.shard.sync import ConservativeWindowSync, LocalShardHost
from repro.workload.params import SimulationParameters


def make_params(**overrides):
    defaults = dict(nodes=8, clients=8, servers_layer1=4, seed=7)
    defaults.update(overrides)
    return SimulationParameters(**defaults)


class TestShardPlan:
    def test_partition_sums_to_totals(self):
        plan = ShardPlan(params=make_params(nodes=10, clients=13,
                                            servers_layer1=7), shards=3)
        assert sum(plan.nodes_of(s) for s in range(3)) == 10
        assert sum(plan.clients_of(s) for s in range(3)) == 13
        assert sum(plan.servers_of(s) for s in range(3)) == 7
        # Remainders go to the lowest shard ids.
        assert plan.clients_of(0) >= plan.clients_of(2)

    def test_lookahead_is_base_latency(self):
        plan = ShardPlan(params=make_params(), shards=2, base_latency=3.5)
        assert plan.lookahead == 3.5
        assert plan.window == 3.5

    def test_remote_mean_defaults_to_cell_latency(self):
        params = make_params(mean_message_latency=2.25)
        plan = ShardPlan(params=params, shards=2)
        assert plan.remote_latency_mean == 2.25
        explicit = ShardPlan(params=params, shards=2, remote_mean_latency=0.5)
        assert explicit.remote_latency_mean == 0.5

    def test_expected_remote_round_trip_closed_form(self):
        plan = ShardPlan(
            params=make_params(), shards=2, base_latency=2.0,
            remote_mean_latency=1.0,
        )
        assert plan.expected_remote_call_duration == 2 * (2.0 + 1.0) + 1.0

    def test_shard_seeds_distinct_and_deterministic(self):
        plan = ShardPlan(params=make_params(), shards=4)
        seeds = [plan.shard_seed(s) for s in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [plan.shard_seed(s) for s in range(4)]
        assert all(seed != plan.params.seed for seed in seeds)

    def test_shard_params_carry_slice_and_seed(self):
        plan = ShardPlan(params=make_params(), shards=2)
        sub = plan.shard_params(1)
        assert sub.clients == plan.clients_of(1)
        assert sub.nodes == plan.nodes_of(1)
        assert sub.servers_layer1 == plan.servers_of(1)
        assert sub.seed == plan.shard_seed(1)
        # Timing/policy knobs are inherited unchanged.
        assert sub.mean_interblock_time == plan.params.mean_interblock_time
        assert sub.policy == plan.params.policy

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(shards=0), "shards"),
            (dict(shards=2, remote_fraction=1.5), "remote_fraction"),
            (dict(shards=2, base_latency=0.0), "lookahead"),
            (dict(shards=9), "nodes"),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            ShardPlan(params=make_params(), **kwargs)

    def test_layered_and_visit_rejected(self):
        layered = make_params(servers_layer2=2, use_alliances=True)
        with pytest.raises(ConfigurationError, match="layered"):
            ShardPlan(params=layered, shards=2)
        visit = make_params(block_style="visit")
        with pytest.raises(ConfigurationError, match="move"):
            ShardPlan(params=visit, shards=2)

    def test_single_shard_plan_always_valid(self):
        # shards=1 never partitions, so tiny/layered cells are fine.
        ShardPlan(params=SimulationParameters(seed=0), shards=1)

    def test_shard_id_bounds_checked(self):
        plan = ShardPlan(params=make_params(), shards=2)
        with pytest.raises(ConfigurationError, match="out of range"):
            plan.shard_seed(2)

    def test_with_shards_keeps_knobs(self):
        plan = ShardPlan(
            params=make_params(), shards=2, remote_fraction=0.2,
            base_latency=4.0,
        )
        other = plan.with_shards(4)
        assert other.shards == 4
        assert other.remote_fraction == 0.2
        assert other.base_latency == 4.0

    def test_describe_is_json_shaped(self):
        import json

        plan = ShardPlan(params=make_params(), shards=2)
        doc = plan.describe()
        json.dumps(doc)
        assert doc["shards"] == 2
        assert len(doc["seeds"]) == 2


class TestEffectiveShards:
    def test_clamps_to_smallest_population(self):
        assert effective_shards(make_params(clients=1), 4) == 1
        assert effective_shards(make_params(clients=3), 4) == 3
        assert effective_shards(make_params(), 4) == 4

    def test_unshardable_shapes_degrade_to_one(self):
        layered = make_params(servers_layer2=2, use_alliances=True)
        assert effective_shards(layered, 4) == 1
        visit = make_params(block_style="visit")
        assert effective_shards(visit, 4) == 1


class TestMessages:
    def test_merge_key_orders_by_time_shard_seq(self):
        msgs = [
            RemoteCall(src_shard=1, dst_shard=0, seq=5, send_time=0.0,
                       deliver_at=4.0),
            RemoteCall(src_shard=0, dst_shard=1, seq=9, send_time=0.0,
                       deliver_at=4.0),
            RemoteCall(src_shard=0, dst_shard=1, seq=2, send_time=0.0,
                       deliver_at=3.0),
        ]
        ordered = sorted(msgs, key=merge_key)
        assert [m.seq for m in ordered] == [2, 9, 5]

    def test_route_batches_groups_and_sorts(self):
        call = RemoteCall(src_shard=0, dst_shard=1, seq=1, send_time=0.0,
                          deliver_at=5.0)
        reply = RemoteReply(src_shard=1, dst_shard=0, seq=1, call_shard=0,
                            call_seq=1, send_time=0.0, deliver_at=4.0,
                            service_time=1.0)
        early = RemoteCall(src_shard=1, dst_shard=0, seq=2, send_time=0.0,
                           deliver_at=3.0)
        batches = [
            WindowBatch(window=1, src_shard=0, messages=(call,)),
            WindowBatch(window=1, src_shard=1, messages=(reply, early)),
        ]
        inbound = route_batches(batches, shards=2)
        assert inbound[1] == [call]
        assert inbound[0] == [early, reply]  # sorted by deliver_at
        # Arrival order of batches must not matter.
        assert route_batches(list(reversed(batches)), shards=2) == inbound

    def test_call_id_correlation(self):
        call = RemoteCall(src_shard=2, dst_shard=0, seq=7, send_time=1.0,
                          deliver_at=9.0)
        reply = RemoteReply(src_shard=0, dst_shard=2, seq=1, call_shard=2,
                            call_seq=7, send_time=9.5, deliver_at=12.0,
                            service_time=0.5)
        assert call.call_id == reply.call_id == (2, 7)


class TestShiftedExponentialLatency:
    def test_min_delay_is_base_for_remote_zero_for_local(self):
        model = ShiftedExponentialLatency(base=2.0, mean=1.0)
        assert model.min_delay(0, 1) == 2.0
        assert model.min_delay(3, 3) == 0.0

    def test_samples_never_below_base(self):
        model = ShiftedExponentialLatency(base=2.0, mean=1.0)
        stream = RandomStreams(1).stream("lat")
        samples = [model.sample(0, 1, stream) for _ in range(500)]
        assert min(samples) >= 2.0
        assert model.sample(4, 4, stream) == 0.0

    def test_mean_and_validation(self):
        model = ShiftedExponentialLatency(base=2.0, mean=1.5)
        assert model.mean(0, 1) == 3.5
        assert model.mean(2, 2) == 0.0
        with pytest.raises(ValueError):
            ShiftedExponentialLatency(base=-1.0, mean=1.0)

    def test_base_latency_models_default_min_delay(self):
        assert NormalizedExponentialLatency(1.0).min_delay(0, 1) == 0.0
        assert DeterministicLatency(2.5).min_delay(0, 1) == 2.5
        assert DeterministicLatency(2.5).min_delay(1, 1) == 0.0


class TestShardRouter:
    def make_router(self, shard_id=0, shards=2, on_call=None):
        env = Environment()
        stream = RandomStreams(9).stream(f"link.{shard_id}")
        router = ShardRouter(
            env, shard_id=shard_id, shards=shards, base_latency=2.0,
            mean_latency=1.0, stream=stream, on_call=on_call,
        )
        return env, router

    def test_zero_base_latency_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError, match="positive"):
            ShardRouter(env, shard_id=0, shards=2, base_latency=0.0,
                        mean_latency=1.0,
                        stream=RandomStreams(0).stream("x"))

    def test_send_to_self_and_out_of_range_rejected(self):
        _, router = self.make_router()
        with pytest.raises(ConfigurationError, match="remote lane"):
            router.send_call(0)
        with pytest.raises(ConfigurationError, match="out of range"):
            router.send_call(2)

    def test_send_call_batches_with_lookahead_delay(self):
        _, router = self.make_router()
        router.send_call(1)
        router.send_call(1)
        batch = router.drain()
        assert len(batch) == 2
        assert [m.seq for m in batch] == [1, 2]
        assert all(m.deliver_at >= 2.0 for m in batch)  # >= lookahead
        assert router.drain() == []  # drained
        assert router.pending_calls == 2

    def test_round_trip_resolves_pending_event(self):
        served = []
        env0, r0 = self.make_router(shard_id=0)
        r1_env = env0  # same env: deterministic single-clock harness
        r1 = ShardRouter(
            r1_env, shard_id=1, shards=2, base_latency=2.0, mean_latency=1.0,
            stream=RandomStreams(9).stream("link.1"),
            on_call=lambda call: served.append(call),
        )

        durations = []

        def client():
            duration = yield r0.send_call(1)
            durations.append(duration)

        env0.process(client())
        env0.run(until=0.5)
        # Barrier: move shard-0's batch to shard 1.
        r1.deliver(router_batch := r0.drain())
        env0.run(until=10.0)
        assert len(served) == 1
        # Serve: reply immediately, next barrier ships it back.
        r1.send_reply(served[0], service_time=0.0)
        r0.deliver(r1.drain())
        env0.run(until=30.0)
        assert len(durations) == 1
        assert durations[0] >= 2 * 2.0  # two link traversals minimum
        assert r0.pending_calls == 0
        assert router_batch[0].deliver_at >= 2.0

    def test_delivery_into_the_past_rejected(self):
        env, router = self.make_router()
        env.run(until=50.0)
        stale = RemoteCall(src_shard=1, dst_shard=0, seq=1, send_time=0.0,
                           deliver_at=10.0)
        with pytest.raises(RuntimeError, match="conservative sync violated"):
            router.deliver([stale])

    def test_inbound_call_without_handler_raises(self):
        env, router = self.make_router(on_call=None)
        call = RemoteCall(src_shard=1, dst_shard=0, seq=1, send_time=0.0,
                          deliver_at=2.0)
        router.deliver([call])
        with pytest.raises(RuntimeError, match="no on_call handler"):
            env.run(until=5.0)

    def test_stats_counters(self):
        _, router = self.make_router()
        router.send_call(1)
        router.drain()
        stats = router.stats()
        assert stats["calls_sent"] == 1
        assert stats["batches_out"] == 1
        assert stats["max_batch"] == 1
        assert stats["pending_calls"] == 1


class TestWindowSyncValidation:
    def test_hosts_must_cover_plan_exactly(self):
        plan = ShardPlan(params=make_params(), shards=2)
        host = LocalShardHost(plan, [0])
        with pytest.raises(ValueError, match="hosts cover"):
            ConservativeWindowSync(plan, [host])

    def test_poll_cadence_at_least_one_window(self):
        plan = ShardPlan(params=make_params(), shards=2, base_latency=100.0)
        hosts = [LocalShardHost(plan, [0, 1])]
        sync = ConservativeWindowSync(plan, hosts, poll_interval=1.0)
        assert sync.poll_windows == 1

    def test_collect_without_dispatch_raises(self):
        plan = ShardPlan(params=make_params(), shards=2)
        host = LocalShardHost(plan, [0, 1])
        with pytest.raises(RuntimeError, match="without a dispatched"):
            host.collect()


class TestRunnerValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            run_sharded_cell(make_params(), 2, backend="threads")


class TestMaxWorkersCap:
    def test_unset_and_empty_mean_no_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert max_workers_cap() is None
        monkeypatch.setenv("REPRO_MAX_WORKERS", "  ")
        assert max_workers_cap() is None

    def test_caps_auto_and_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert resolve_workers("auto") == 1
        assert resolve_workers(8) == 1

    def test_cap_above_request_is_inert(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "64")
        assert resolve_workers(2) == 2

    @pytest.mark.parametrize("bad", ["zero", "0", "-3", "1.5"])
    def test_invalid_cap_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MAX_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_MAX_WORKERS"):
            resolve_workers("auto")

    def test_auto_clamped_to_at_least_one(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_workers("auto") == 1


class TestSleepPoolCap:
    def run_sleepers(self, env, count=20):
        def sleeper():
            for _ in range(3):
                yield env.sleep(1.0)

        for _ in range(count):
            env.process(sleeper())
        env.run(until=10.0)

    def test_default_cap_is_module_constant(self):
        env = Environment()
        assert env._sleep_pool_cap == _SLEEP_POOL_MAX

    def test_custom_cap_bounds_pool(self):
        env = Environment(sleep_pool_cap=4)
        self.run_sleepers(env)
        assert len(env._sleep_pool) <= 4

    def test_zero_cap_disables_pooling(self):
        env = Environment(sleep_pool_cap=0)
        self.run_sleepers(env)
        assert len(env._sleep_pool) == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="sleep_pool_cap"):
            Environment(sleep_pool_cap=-1)

    def test_capped_environment_still_deterministic(self):
        from repro.sim.stopping import StoppingConfig
        from repro.workload.clientserver import run_cell

        params = make_params(clients=4)
        base = run_cell(params, stopping=StoppingConfig.fast())
        # The cap changes only recycling, never event order.
        again = run_cell(params, stopping=StoppingConfig.fast())
        assert base.mean_communication_time_per_call == (
            again.mean_communication_time_per_call
        )


class TestHotspot:
    def test_full_scale_meets_issue_floor(self):
        params = hotspot_params(scale=1.0)
        assert params.clients >= 100_000
        assert params.servers_layer1 >= 10_000

    def test_downscaled_plan_keeps_every_shard_populated(self):
        plan = hotspot_plan(8, scale=0.0001)
        assert plan.params.clients >= 8
        assert plan.params.servers_layer1 >= 8
        assert min(plan.clients_of(s) for s in range(8)) >= 1

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            hotspot_params(scale=0.0)
