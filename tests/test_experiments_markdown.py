"""Tests for Markdown report generation."""

import pytest

from repro.experiments.markdown import (
    to_markdown_document,
    to_markdown_section,
    to_markdown_table,
)
from tests.test_experiments_plot import fake_result


@pytest.fixture
def result():
    return fake_result(
        {"Migration": [1.0, 2.0, 3.0], "Placement": [0.5, 1.0, 1.5]},
        x_values=(1.0, 5.0, 10.0),
    )


class TestTable:
    def test_header_and_divider(self, result):
        table = to_markdown_table(result)
        lines = table.splitlines()
        assert lines[0] == "| x | Migration | Placement |"
        assert lines[1] == "|---:|---:|---:|"

    def test_rows_formatted(self, result):
        table = to_markdown_table(result, precision=2)
        assert "| 5 | 2.00 | 1.00 |" in table

    def test_row_count(self, result):
        table = to_markdown_table(result)
        assert len(table.splitlines()) == 2 + 3  # header+divider+3 x values

    def test_alternate_metric(self, result):
        table = to_markdown_table(result, metric="mean_call_duration")
        assert "| 1 | 1.000 | 0.500 |" in table


class TestSection:
    def test_heading_and_metric_note(self, result):
        section = to_markdown_section(result, heading_level=3)
        assert section.startswith("### fake — Fake")
        assert "`mean_communication_time_per_call`" in section

    def test_document_combines_sections(self, result):
        doc = to_markdown_document([result, result], title="All figures")
        assert doc.startswith("# All figures")
        assert doc.count("## fake — Fake") == 2
        assert doc.endswith("\n")
