"""Unit tests for the object-location strategies."""

import pytest

from repro.network.latency import DeterministicLatency
from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.runtime.locator import (
    BroadcastLocator,
    ForwardingLocator,
    ImmediateUpdateLocator,
    NameServerLocator,
    make_locator,
)
from repro.runtime.objects import DistributedObject
from repro.sim.rng import RandomStreams


@pytest.fixture
def net(env):
    return Network(
        env,
        topology=FullyConnected(4),
        latency=DeterministicLatency(1.0),
        streams=RandomStreams(0),
    )


@pytest.fixture
def obj(env):
    return DistributedObject(env, object_id=1, node_id=2)


def locate(env, locator, caller, obj):
    def proc(env):
        node = yield from locator.locate(caller, obj)
        return (env.now, node)

    p = env.process(proc(env))
    env.run()
    return p.value


class TestImmediateUpdate:
    def test_free_and_correct(self, env, net, obj):
        locator = ImmediateUpdateLocator(env, net)
        elapsed, node = locate(env, locator, 0, obj)
        assert elapsed == 0.0
        assert node == 2
        assert locator.lookup_messages == 0


class TestNameServer:
    def test_remote_caller_pays_round_trip(self, env, net, obj):
        locator = NameServerLocator(env, net, server_node=0)
        elapsed, node = locate(env, locator, 3, obj)
        assert elapsed == pytest.approx(2.0)
        assert node == 2
        assert locator.lookup_messages == 2

    def test_colocated_caller_is_free(self, env, net, obj):
        locator = NameServerLocator(env, net, server_node=3)
        elapsed, _ = locate(env, locator, 3, obj)
        assert elapsed == 0.0


class TestForwarding:
    def test_fresh_knowledge_is_free(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        elapsed, node = locate(env, locator, 0, obj)
        assert elapsed == 0.0
        assert node == 2

    def test_stale_knowledge_pays_per_extra_move(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locate(env, locator, 0, obj)  # refresh caller 0's knowledge
        # Object moves three times; caller 0 is now 3 moves stale.
        for _ in range(3):
            locator.note_migration(obj, 3)
        elapsed, _ = locate(env, locator, 0, obj)
        # hops=3 -> 2 extra forwarding legs charged.
        assert elapsed == pytest.approx(2.0)
        assert locator.lookup_messages == 2

    def test_lookup_refreshes_knowledge(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locator.note_migration(obj, 3)
        locator.note_migration(obj, 1)
        locate(env, locator, 0, obj)
        before = env.now
        after, _ = locate(env, locator, 0, obj)
        assert after == before  # second lookup is fresh: no extra time

    def test_hops_capped(self, env, net, obj):
        locator = ForwardingLocator(env, net, max_hops=2)
        for _ in range(50):
            locator.note_migration(obj, 1)
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed == pytest.approx(1.0)  # capped at 2 hops -> 1 leg


class TestBroadcast:
    def test_remote_lookup_costs_round_trip(self, env, net, obj):
        locator = BroadcastLocator(env, net)
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed == pytest.approx(2.0)
        assert locator.lookup_messages == 2

    def test_local_lookup_free(self, env, net, obj):
        locator = BroadcastLocator(env, net)
        elapsed, _ = locate(env, locator, 2, obj)
        assert elapsed == 0.0


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["immediate", "nameserver", "forwarding", "broadcast"]
    )
    def test_make_locator(self, env, net, name):
        locator = make_locator(name, env, net)
        assert locator.name == name

    def test_unknown_locator(self, env, net):
        with pytest.raises(ValueError, match="unknown locator"):
            make_locator("dns", env, net)
