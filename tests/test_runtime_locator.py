"""Unit tests for the object-location strategies."""

import pytest

from repro.network.latency import DeterministicLatency
from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.runtime.locator import (
    BroadcastLocator,
    ForwardingLocator,
    ImmediateUpdateLocator,
    NameServerLocator,
    make_locator,
)
from repro.runtime.objects import DistributedObject
from repro.sim.rng import RandomStreams


@pytest.fixture
def net(env):
    return Network(
        env,
        topology=FullyConnected(4),
        latency=DeterministicLatency(1.0),
        streams=RandomStreams(0),
    )


@pytest.fixture
def obj(env):
    return DistributedObject(env, object_id=1, node_id=2)


def locate(env, locator, caller, obj):
    def proc(env):
        node = yield from locator.locate(caller, obj)
        return (env.now, node)

    p = env.process(proc(env))
    env.run()
    return p.value


class TestImmediateUpdate:
    def test_free_and_correct(self, env, net, obj):
        locator = ImmediateUpdateLocator(env, net)
        elapsed, node = locate(env, locator, 0, obj)
        assert elapsed == 0.0
        assert node == 2
        assert locator.lookup_messages == 0


class TestNameServer:
    def test_remote_caller_pays_round_trip(self, env, net, obj):
        locator = NameServerLocator(env, net, server_node=0)
        elapsed, node = locate(env, locator, 3, obj)
        assert elapsed == pytest.approx(2.0)
        assert node == 2
        assert locator.lookup_messages == 2

    def test_colocated_caller_is_free(self, env, net, obj):
        locator = NameServerLocator(env, net, server_node=3)
        elapsed, _ = locate(env, locator, 3, obj)
        assert elapsed == 0.0


class TestForwarding:
    def test_fresh_knowledge_is_free(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        elapsed, node = locate(env, locator, 0, obj)
        assert elapsed == 0.0
        assert node == 2

    def test_stale_knowledge_pays_per_extra_move(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locate(env, locator, 0, obj)  # refresh caller 0's knowledge
        # Object moves three times; caller 0 is now 3 moves stale.
        for _ in range(3):
            locator.note_migration(obj, 3)
        elapsed, _ = locate(env, locator, 0, obj)
        # hops=3 -> 2 extra forwarding legs charged.
        assert elapsed == pytest.approx(2.0)
        assert locator.lookup_messages == 2

    def test_lookup_refreshes_knowledge(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locator.note_migration(obj, 3)
        locator.note_migration(obj, 1)
        locate(env, locator, 0, obj)
        before = env.now
        after, _ = locate(env, locator, 0, obj)
        assert after == before  # second lookup is fresh: no extra time

    def test_hops_capped(self, env, net, obj):
        locator = ForwardingLocator(env, net, max_hops=2)
        for _ in range(50):
            locator.note_migration(obj, 1)
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed == pytest.approx(1.0)  # capped at 2 hops -> 1 leg

    def test_chain_tracked_per_migration(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locator.note_migration(obj, 3)
        locator.note_migration(obj, 1)
        locator.note_migration(obj, 3)
        assert locator.chain_of(obj) == [3, 1, 3]

    def test_successful_locate_compacts_chain(self, env, net, obj):
        locator = ForwardingLocator(env, net)
        locate(env, locator, 0, obj)  # caller 0 knows seq 0
        locate(env, locator, 1, obj)  # caller 1 knows seq 0
        for target in (3, 1, 3):
            locator.note_migration(obj, target)
        # Caller 0 walks the whole 3-hop chain and compacts it.
        t0 = env.now
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed - t0 == pytest.approx(2.0)
        assert locator.chains_compacted == 1
        # Caller 1 is equally stale but now jumps straight to the home:
        # a single hop, whose leg is covered by the request message.
        before = locator.lookup_messages
        t1 = env.now
        elapsed2, _ = locate(env, locator, 1, obj)
        assert elapsed2 - t1 == pytest.approx(0.0)
        assert locator.lookup_messages == before

    def test_chain_through_crashed_node_raises(self, env, net, obj):
        class Health:
            def __init__(self, down):
                self.down = down

            def is_down(self, node_id):
                return node_id in self.down

        from repro.errors import NodeCrashedError

        locator = ForwardingLocator(env, net, health=Health({3}))
        locator.note_migration(obj, 3)  # intermediate forwarder: node 3
        locator.note_migration(obj, 1)  # current home: node 1

        def proc(env):
            try:
                yield from locator.locate(0, obj)
            except NodeCrashedError as exc:
                return exc
            return None

        p = env.process(proc(env))
        env.run()
        assert isinstance(p.value, NodeCrashedError)
        assert "crashed node 3" in str(p.value)

    def test_crashed_final_home_does_not_raise_in_locate(self, env, net, obj):
        # Only *intermediate* forwarders are refused: the final hop is
        # the object's current home, and whether that node is reachable
        # is the invocation layer's problem, not the locator's.
        class Health:
            def is_down(self, node_id):
                return node_id == 1

        locator = ForwardingLocator(env, net, health=Health())
        locator.note_migration(obj, 3)
        locator.note_migration(obj, 1)
        # Chain 3 -> 1 with only the final home (1) down: traversal
        # passes through live node 3 and completes.
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed == pytest.approx(1.0)


class TestBroadcast:
    def test_remote_lookup_costs_round_trip(self, env, net, obj):
        locator = BroadcastLocator(env, net)
        elapsed, _ = locate(env, locator, 0, obj)
        assert elapsed == pytest.approx(2.0)
        assert locator.lookup_messages == 2

    def test_local_lookup_free(self, env, net, obj):
        locator = BroadcastLocator(env, net)
        elapsed, _ = locate(env, locator, 2, obj)
        assert elapsed == 0.0


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["immediate", "nameserver", "forwarding", "broadcast"]
    )
    def test_make_locator(self, env, net, name):
        locator = make_locator(name, env, net)
        assert locator.name == name

    def test_unknown_locator(self, env, net):
        with pytest.raises(ValueError, match="unknown locator"):
            make_locator("dns", env, net)
