"""Workload-scale accounting integration tests.

Cross-check the independent bookkeeping layers against each other:
network message counters, migration counters, policy statistics and
metric totals must tell one consistent story.
"""

import pytest

from repro.sim.stopping import StoppingConfig
from repro.sim.trace import Tracer
from repro.workload.clientserver import ClientServerWorkload
from repro.workload.params import SimulationParameters

STOP = StoppingConfig(
    relative_precision=0.2,
    confidence=0.9,
    batch_size=60,
    warmup=60,
    min_batches=3,
    max_observations=5_000,
)


def run(policy, seed=0, clients=6, tracer=None):
    params = SimulationParameters(
        policy=policy, clients=clients, nodes=3, seed=seed
    )
    workload = ClientServerWorkload(
        params,
        stopping=STOP,
        tracer=tracer if tracer is not None else Tracer(kinds=set()),
    )
    result = workload.run()
    return workload, result


class TestMessageAccounting:
    def test_sedentary_message_count_matches_calls(self):
        """Without migration every message is an invocation request or
        reply: remote+local messages == 2 x invocations performed."""
        workload, result = run("sedentary")
        network = workload.system.network
        invocations = workload.system.invocations.durations.count
        total_messages = network.remote_messages + network.local_messages
        # Calls in flight at cutoff have sent their request but not
        # their reply: allow one message per client of slack.
        assert 0 <= total_messages - 2 * invocations <= workload.params.clients

    def test_placement_message_economy(self):
        """§3.2: for the same workload, placement sends no more remote
        messages per block than conventional migration (it only ever
        saves transfers; move-request counts are identical)."""
        w_migration, r_migration = run("migration", seed=42)
        w_placement, r_placement = run("placement", seed=42)
        per_block_migration = (
            w_migration.system.network.remote_messages
            / r_migration.raw["metrics"]["blocks"]
        )
        per_block_placement = (
            w_placement.system.network.remote_messages
            / r_placement.raw["metrics"]["blocks"]
        )
        assert per_block_placement <= per_block_migration * 1.05

    def test_migration_transfers_match_object_counters(self):
        workload, _ = run("migration")
        service_total = workload.system.migrations.migration_count
        object_total = sum(
            s.migration_count for s in workload.servers
        )
        assert service_total == object_total

    def test_policy_grant_counts_match_blocks(self):
        workload, result = run("placement")
        stats = workload.policy.stats()
        blocks = result.raw["metrics"]["blocks"]
        # Every completed block issued exactly one move request; a few
        # requests may belong to blocks still open at cutoff.
        assert stats["moves_requested"] >= blocks
        assert stats["moves_requested"] <= blocks + workload.params.clients
        undecided = stats["moves_requested"] - (
            stats["moves_granted"] + stats["moves_rejected"]
        )
        # Requests whose decision was still pending at cutoff.
        assert 0 <= undecided <= workload.params.clients

    def test_metric_totals_match_running_sums(self):
        workload, result = run("migration")
        metrics = workload.metrics
        # The decomposition identity at the totals level.
        recomputed = (
            metrics.call_durations.total
            + metrics.total_migration_cost
            + metrics.system_migration_cost
            + metrics.unamortized_migration_cost
        ) / metrics.call_count
        assert result.mean_communication_time_per_call == pytest.approx(
            recomputed
        )

    def test_comparing_policy_open_requests_bounded_by_clients(self):
        workload, _ = run("comparing", clients=5)
        for counts in workload.policy._open.values():
            assert sum(counts.values()) <= 5
