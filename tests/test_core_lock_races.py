"""Race tests for the lock manager's crash-breaking path.

The dangerous schedule: a mover's lease renewal (a fresh ``lock`` call,
which refreshes the lease) lands in the *same simulation tick* as the
sweeper's ``break_crashed``.  Without the broken-block guard the order
of the two events decides whether a crashed (or falsely suspected)
mover walks away holding a lock nobody can ever reclaim again.  These
tests pin both orders of the seeded schedule and assert the lock never
resurrects.
"""

import pytest

from repro.core.locking import LeaseSweeper, LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.objects import DistributedObject


class OneNodeDown:
    """Health stub reporting a single node as down."""

    def __init__(self, node_id):
        self.node_id = node_id

    def is_down(self, node_id):
        return node_id == self.node_id


@pytest.fixture
def objects(env):
    return [
        DistributedObject(env, object_id=i, node_id=5, name=f"obj-{i}")
        for i in range(3)
    ]


class TestSameTickRenewalVsBreak:
    def test_break_then_renewal_does_not_resurrect(self, env, objects):
        """break_crashed first, renewal second — renewal must fail."""
        locks = LockManager(env=env, lease_duration=30.0)
        block = MoveBlock(client_node=2, target=objects[0])
        locks.lock(objects[0], block)
        health = OneNodeDown(2)

        def schedule(env):
            yield env.timeout(10.0)
            # Same tick, deterministic order: the sweep runs first...
            assert locks.break_crashed(health) == 1
            # ...and the crashed mover's renewal arrives right after.
            with pytest.raises(PolicyError, match="was broken"):
                locks.lock(objects[1], block)

        env.process(schedule(env))
        env.run()
        assert locks.locked_objects() == []
        assert locks.was_broken(block)
        locks.check_invariant()

    def test_renewal_then_break_releases_everything(self, env, objects):
        """Renewal first, break second — the break wins anyway."""
        locks = LockManager(env=env, lease_duration=30.0)
        block = MoveBlock(client_node=2, target=objects[0])
        locks.lock(objects[0], block)
        health = OneNodeDown(2)

        def schedule(env):
            yield env.timeout(10.0)
            # The renewal sneaks in before the sweep this time: it
            # succeeds (the block is not broken yet)...
            locks.lock(objects[1], block)
            assert len(locks.locked_objects()) == 2
            # ...but the break in the same tick reclaims everything,
            # including the lock the renewal just took.
            assert locks.break_crashed(health) == 2

        env.process(schedule(env))
        env.run()
        assert locks.locked_objects() == []
        assert locks.was_broken(block)
        # And any later renewal stays dead.
        with pytest.raises(PolicyError, match="was broken"):
            locks.lock(objects[2], block)
        locks.check_invariant()

    def test_broken_guard_applies_without_leases(self, env, objects):
        # Plain §3.2 locks (no leases) get the same protection.
        locks = LockManager()
        block = MoveBlock(client_node=2, target=objects[0])
        locks.lock(objects[0], block)
        locks.break_crashed(OneNodeDown(2))
        with pytest.raises(PolicyError, match="was broken"):
            locks.lock(objects[0], block)

    def test_other_blocks_unaffected(self, env, objects):
        locks = LockManager(env=env, lease_duration=30.0)
        crashed = MoveBlock(client_node=2, target=objects[0])
        healthy = MoveBlock(client_node=3, target=objects[1])
        locks.lock(objects[0], crashed)
        locks.lock(objects[1], healthy)
        assert locks.break_crashed(OneNodeDown(2)) == 1
        assert not locks.was_broken(healthy)
        assert locks.locked_objects() == [objects[1]]
        # The healthy block keeps renewing without trouble.
        locks.lock(objects[2], healthy)
        locks.check_invariant()


class TestSweeperDrivesTheBreak:
    def test_sweeper_breaks_crashed_holder_between_renewals(self, env, objects):
        locks = LockManager(env=env, lease_duration=100.0)
        sweeper = LeaseSweeper(
            env, locks, health=OneNodeDown(2), interval=10.0
        )
        block = MoveBlock(client_node=2, target=objects[0])
        locks.lock(objects[0], block)
        renewal_outcomes = []

        def renewer(env):
            # The (suspected-crashed) mover tries to renew every tick
            # that the sweeper fires, alternating arrival order via a
            # sub-tick offset.
            for _ in range(5):
                yield env.timeout(10.0)
                try:
                    locks.lock(objects[1], block)
                    renewal_outcomes.append("ok")
                    locks.release_block(block)
                except PolicyError:
                    renewal_outcomes.append("refused")

        sweeper.start()
        env.process(renewer(env))
        env.run(until=60)
        # After the first sweep broke the block, every renewal refused.
        assert locks.was_broken(block)
        assert "refused" in renewal_outcomes
        assert renewal_outcomes[-1] == "refused"
        assert all(o == "refused" for o in renewal_outcomes[1:])
        assert locks.locked_objects() == []
        locks.check_invariant()
