"""Integration tests: AsyncioTransport over real sockets, in-process.

Every test runs multiple transports inside one event loop (one process)
over Unix sockets in a tmp dir — real framing, real connects, real
reconnects — and wraps the whole scenario in a hard wall-clock timeout
so a wedged transport fails fast instead of hanging CI.

Cross-process traffic is exercised by the supervisor smoke test in
``tests/test_live_supervisor.py``; this file pins the transport-level
contracts: request/reply correlation, deadline behaviour, connect
retry, idempotent redelivery, and fault injection.
"""

import asyncio

import pytest

from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    TimeoutError,
    TransportClosedError,
)
from repro.runtime.live.transport import (
    AsyncioTransport,
    FaultyTransport,
    unix_supported,
)
from repro.runtime.live.wire import SUPERVISOR
from repro.runtime.retry import RetryPolicy

#: Hard ceiling on any single scenario — generous next to the
#: sub-second work each does, tiny next to a CI hang.
SCENARIO_TIMEOUT = 20.0

#: Fast retry recipe so failure paths resolve in milliseconds.
FAST_RETRY = RetryPolicy(
    max_attempts=3, timeout=1.0, base=0.01, cap=0.05, multiplier=2.0,
    jitter=0.5,
)

#: Patient recipe whose total backoff budget (~3s) comfortably spans a
#: listener that comes up late.
PATIENT_RETRY = RetryPolicy(
    max_attempts=10, timeout=1.0, base=0.02, cap=0.5, multiplier=2.0,
    jitter=0.5,
)


def run(coro):
    """Drive one scenario under the hard timeout."""
    async def bounded():
        return await asyncio.wait_for(coro, SCENARIO_TIMEOUT)

    return asyncio.run(bounded())


def make_peers(tmp_path, node_ids):
    """Unix-socket (or TCP fallback) address map for the given nodes."""
    if unix_supported():
        return {
            node: ("unix", str(tmp_path / f"node{node}.sock"))
            for node in node_ids
        }
    base = 42000
    return {node: ("tcp", "127.0.0.1", base + node) for node in node_ids}


async def start_mesh(tmp_path, node_ids, **kwargs):
    peers = make_peers(tmp_path, node_ids)
    transports = {
        node: AsyncioTransport(node, peers[node], peers, **kwargs)
        for node in node_ids
    }
    for transport in transports.values():
        await transport.start()
    return transports


async def stop_mesh(transports):
    for transport in transports.values():
        await transport.close()


class TestRequestReply:
    def test_echo_round_trip(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0, 1])

            async def echo(envelope):
                await mesh[1].reply(envelope, dict(envelope.payload))

            mesh[1].handler = echo
            reply = await mesh[0].request(1, "invoke", {"x": 41}, timeout=5.0)
            await stop_mesh(mesh)
            return reply

        reply = run(scenario())
        assert reply.payload == {"x": 41}
        assert reply.reply_to == (0, 1)

    def test_timeout_raises_shared_repro_error(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0, 1])
            mesh[1].handler = None  # peer is up but mute
            with pytest.raises(TimeoutError):
                await mesh[0].request(1, "invoke", timeout=0.2)
            await stop_mesh(mesh)

        run(scenario())

    def test_loopback_counts_as_local(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0])
            received = []

            async def record(envelope):
                received.append(envelope)

            mesh[0].handler = record
            await mesh[0].send(0, "heartbeat")
            # Handlers run as spawned tasks; yield so the loopback
            # delivery lands before the mesh shuts down.
            await asyncio.sleep(0)
            stats = mesh[0].stats()
            await stop_mesh(mesh)
            return received, stats

        received, stats = run(scenario())
        assert len(received) == 1
        assert stats["local_messages"] == 1
        assert stats["remote_messages"] == 0


class TestConnectRetry:
    def test_connect_retries_until_late_listener_appears(self, tmp_path):
        async def scenario():
            peers = make_peers(tmp_path, [0, 1])
            early = AsyncioTransport(0, peers[0], peers, retry=PATIENT_RETRY)
            late = AsyncioTransport(1, peers[1], peers, retry=PATIENT_RETRY)
            await early.start()
            got = asyncio.get_running_loop().create_future()

            async def receive(envelope):
                if not got.done():
                    got.set_result(envelope)

            late.handler = receive

            async def start_late():
                await asyncio.sleep(0.05)  # inside early's retry budget
                await late.start()

            starter = asyncio.ensure_future(start_late())
            await early.send(1, "heartbeat", {"n": 1})
            envelope = await asyncio.wait_for(got, 5.0)
            await starter
            stats = early.stats()
            await early.close()
            await late.close()
            return envelope, stats

        envelope, stats = run(scenario())
        assert envelope.payload == {"n": 1}
        assert stats["reconnects"] >= 1

    def test_connect_exhaustion_raises_connection_lost(self, tmp_path):
        async def scenario():
            peers = make_peers(tmp_path, [0, 1])
            lonely = AsyncioTransport(0, peers[0], peers, retry=FAST_RETRY)
            await lonely.start()
            with pytest.raises(ConnectionLostError) as excinfo:
                await lonely.send(1, "heartbeat")
            await lonely.close()
            return excinfo.value

        error = run(scenario())
        assert error.peer == 1


class TestIdempotentRedelivery:
    def test_duplicate_msg_id_handled_once(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0, 1])
            handled = []

            async def record(envelope):
                handled.append(envelope.msg_id)

            mesh[1].handler = record
            envelope = await mesh[0].send(1, "invoke", {"op": "inc"})
            # A reconnecting sender resends the identical envelope.
            await mesh[0]._raw_send(envelope)
            await asyncio.sleep(0.2)
            duplicates = mesh[1].dedup.duplicates
            await stop_mesh(mesh)
            return handled, duplicates

        handled, duplicates = run(scenario())
        assert handled == [(0, 1)], "handler must run exactly once"
        assert duplicates == 1


class TestBounds:
    def test_oversized_send_refused(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0, 1], max_payload=128)
            with pytest.raises(FrameTooLargeError):
                await mesh[0].send(1, "object.transfer", {"blob": b"x" * 1024})
            await stop_mesh(mesh)

        run(scenario())

    def test_closed_transport_refuses_sends(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [0, 1])
            await stop_mesh(mesh)
            with pytest.raises(TransportClosedError):
                await mesh[0].send(1, "heartbeat")

        run(scenario())


class TestFaultyTransport:
    def test_total_drop_makes_requests_time_out(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [1, 2])
            faults = FaultyTransport(mesh[1], seed=1)
            faults.configure(drop_rate=0.999999)

            async def echo(envelope):
                await mesh[2].reply(envelope)

            mesh[2].handler = echo
            with pytest.raises(TimeoutError):
                await mesh[1].request(2, "invoke", timeout=0.2)
            stats = faults.stats()
            dropped = mesh[1].stats()["dropped_messages"]
            await stop_mesh(mesh)
            return stats, dropped

        stats, dropped = run(scenario())
        assert stats["injected_drops"] >= 1
        assert dropped >= 1

    def test_partition_blocks_data_plane_not_control_plane(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [SUPERVISOR, 1, 2])
            faults = FaultyTransport(mesh[1], seed=2)
            faults.partition({1}, {2})

            async def echo_sup(envelope):
                await mesh[SUPERVISOR].reply(envelope, {"ok": True})

            mesh[SUPERVISOR].handler = echo_sup
            # Data plane 1 -> 2 is cut...
            with pytest.raises(TimeoutError):
                await mesh[1].request(2, "invoke", timeout=0.2)
            # ...but the control plane still answers through the chaos.
            reply = await mesh[1].request(
                SUPERVISOR, "heartbeat", timeout=5.0
            )
            faults.heal()
            # After healing, the data plane works again.
            async def echo(envelope):
                await mesh[2].reply(envelope)

            mesh[2].handler = echo
            healed = await mesh[1].request(2, "invoke", timeout=5.0)
            await stop_mesh(mesh)
            return reply, healed

        reply, healed = run(scenario())
        assert reply.payload == {"ok": True}
        assert healed is not None

    def test_duplicates_injected_but_suppressed_by_dedup(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [1, 2])
            faults = FaultyTransport(mesh[1], seed=3)
            faults.configure(duplicate_rate=0.999999)
            handled = []

            async def record(envelope):
                handled.append(envelope.msg_id)

            mesh[2].handler = record
            for _ in range(5):
                await mesh[1].send(2, "invoke")
            await asyncio.sleep(0.3)
            injected = faults.injected_duplicates
            suppressed = mesh[2].dedup.duplicates
            await stop_mesh(mesh)
            return handled, injected, suppressed

        handled, injected, suppressed = run(scenario())
        assert sorted(handled) == [(1, s) for s in range(1, 6)]
        assert injected == 5
        assert suppressed == 5

    def test_delay_range_defers_but_delivers(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [1, 2])
            faults = FaultyTransport(mesh[1], seed=4)
            faults.configure(delay_range=(0.05, 0.1))
            got = asyncio.get_running_loop().create_future()

            async def receive(envelope):
                if not got.done():
                    got.set_result(envelope)

            mesh[2].handler = receive
            await mesh[1].send(2, "invoke", {"slow": True})
            envelope = await asyncio.wait_for(got, 5.0)
            delays = faults.injected_delays
            await stop_mesh(mesh)
            return envelope, delays

        envelope, delays = run(scenario())
        assert envelope.payload == {"slow": True}
        assert delays == 1

    def test_snapshot_roundtrip(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [1, 2])
            a = FaultyTransport(mesh[1], seed=5)
            a.configure(
                drop_rate=0.25,
                duplicate_rate=0.1,
                delay_range=(0.01, 0.02),
                partitions=[{1}, {2}],
            )
            b = FaultyTransport(mesh[2], seed=5)
            b.apply_snapshot(a.snapshot())
            result = (a.snapshot(), b.snapshot())
            await stop_mesh(mesh)
            return result

        a_snap, b_snap = run(scenario())
        assert a_snap == b_snap

    def test_knob_validation(self, tmp_path):
        async def scenario():
            mesh = await start_mesh(tmp_path, [1, 2])
            faults = FaultyTransport(mesh[1])
            with pytest.raises(ValueError):
                faults.configure(drop_rate=1.5)
            with pytest.raises(ValueError):
                faults.configure(delay_range=(0.5, 0.1))
            await stop_mesh(mesh)

        run(scenario())
