"""Cross-process tracing for the live runtime.

Unit layer: span-context propagation primitives (remote/detached
spans, ``span_context``, per-process id bands), the wire ``trace``
field, dedup-safe span recording, the flight recorder ring and dump
format, the per-process writer, clock-offset estimation, the merge
hub, and the exporter's real-pid mapping (with sim output pinned
byte-identical).

Smoke layer: one bounded multi-process run with a supervisor SIGKILL —
the merged Perfetto trace must validate, contain at least one
completed migration spanning >= 3 OS processes, and the killed
processes' flight-recorder dumps must be attached to the recovery
report.
"""

import asyncio
import json
import multiprocessing
import os
import time

import pytest

from repro.availability.livechaos import kill_supervisor_schedule
from repro.runtime.clock import WallClock
from repro.runtime.live.demo import run_supervised
from repro.runtime.live.node import LiveNodeWorker
from repro.runtime.live.supervisor import SupervisorConfig
from repro.runtime.live.wire import SEED, SUPERVISOR, Envelope, EnvelopeFactory
from repro.telemetry.core import NULL_SPAN, NULL_TELEMETRY, Telemetry, span_context
from repro.telemetry.export import to_chrome_trace
from repro.telemetry.live import (
    SPAN_ID_BAND,
    ClockSync,
    FlightRecorder,
    ProcessTelemetryWriter,
    TelemetryHub,
    clean_telemetry_dir,
    load_flight_dump,
    process_id_base,
)
from repro.telemetry.validate import main as validate_main
from repro.telemetry.validate import validate_flight_jsonl

#: Hard ceiling for the full multi-process scenario.
SMOKE_TIMEOUT = 120


class TestSpanContext:
    def test_span_context_shapes(self):
        telemetry = Telemetry()
        span = telemetry.start_span("x")
        assert span_context(span) == (span.trace_id, span.span_id)
        assert span_context(None) is None
        assert span_context(NULL_SPAN) is None
        assert span_context(NULL_TELEMETRY.start_span("x")) is None

    def test_remote_context_joins_foreign_trace(self):
        local = Telemetry(id_base=process_id_base(1))
        remote = Telemetry(id_base=process_id_base(2))
        root = local.start_span("live.move", detached=True)
        child = remote.start_span(
            "live.grant", remote=span_context(root), detached=True
        )
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_detached_spans_leave_current_slot_alone(self):
        telemetry = Telemetry()
        outer = telemetry.start_span("outer")
        detached = telemetry.start_span("handler", detached=True)
        assert telemetry.current_span() is outer
        # A detached span with no context starts its own trace.
        assert detached.parent_id is None
        telemetry.end_span(detached)
        telemetry.end_span(outer)

    def test_process_id_bands_are_disjoint(self):
        bases = {
            process_id_base(node, inc)
            for node in (SUPERVISOR, 1, 2, 3)
            for inc in (0, 1, 2)
        }
        assert len(bases) == 12
        # A realistic run stays far inside one band.
        assert min(
            abs(a - b) for a in bases for b in bases if a != b
        ) == SPAN_ID_BAND

    def test_process_id_base_rejects_nonsense(self):
        with pytest.raises(ValueError):
            process_id_base(-2)
        with pytest.raises(ValueError):
            process_id_base(1, -1)


class TestWireTrace:
    def test_envelope_carries_trace_through_encode(self):
        factory = EnvelopeFactory(1)
        env = factory.make("kind", 2, {"k": 1}, trace=(7, 9))
        assert Envelope.decode(env.encode()).trace == (7, 9)
        assert factory.make("kind", 2, {}).trace is None


class TestDedupSingleSpan:
    def test_duplicated_envelope_records_exactly_one_span(self, tmp_path):
        """At-most-once span recording under at-least-once delivery."""

        async def scenario():
            worker = LiveNodeWorker(
                node_id=1,
                listen=("tcp", "127.0.0.1", 1),
                peers={1: ("tcp", "127.0.0.1", 1)},
                seed_objects=[],
                telemetry_dir=str(tmp_path),
            )

            async def no_reply(request, payload):
                return None

            worker.transport.reply = no_reply
            worker.transport.handler = worker.handle
            envelope = EnvelopeFactory(SUPERVISOR).make(
                SEED, 1, {"objects": []}
            )
            # The same msg_id delivered twice: a retry/redelivery storm.
            await worker.transport._dispatch(envelope)
            await worker.transport._dispatch(envelope)
            if worker.transport._side_tasks:
                await asyncio.gather(*worker.transport._side_tasks)
            return worker

        worker = asyncio.run(scenario())
        assert len(worker.telemetry.spans_named("live.seed")) == 1
        # The flight recorder, by contrast, must show the redelivery.
        recvs = [
            e for e in worker.flight.entries() if e["event"] == "recv"
        ]
        assert [e["duplicate"] for e in recvs] == [False, True]


class TestFlightRecorder:
    def test_ring_is_bounded_and_dump_round_trips(self, tmp_path):
        path = FlightRecorder.path_for(tmp_path, 2, 1)
        flight = FlightRecorder(2, capacity=8, incarnation=1, path=path)
        for i in range(20):
            flight.record("state.tick", transfer_id=i)
        assert len(flight.entries()) == 8
        assert flight.recorded == 20
        flight.dump(reason="sigterm")
        header, entries = load_flight_dump(path)
        assert header["node"] == 2
        assert header["incarnation"] == 1
        assert header["reason"] == "sigterm"
        assert header["pid"] == os.getpid()
        assert [e["transfer_id"] for e in entries] == list(range(12, 20))
        with open(path) as handle:
            assert validate_flight_jsonl(handle.read()) == []

    def test_observer_hooks_keep_payload_bits(self, tmp_path):
        flight = FlightRecorder(
            1, path=FlightRecorder.path_for(tmp_path, 1, 0)
        )
        factory = EnvelopeFactory(1)
        env = factory.make(
            "PLACE", 2, {"transfer_id": 4, "ok": True, "blob": "x"}
        )
        flight.on_send(env)
        flight.on_receive(env, duplicate=True)
        sent, received = flight.entries()
        assert sent["event"] == "send" and sent["transfer_id"] == 4
        assert "blob" not in sent  # payload bodies never recorded
        assert received["duplicate"] is True

    def test_load_rejects_malformed_dump(self, tmp_path):
        bad = tmp_path / "flight-n1-i0.jsonl"
        bad.write_text('{"not": "a header"}\n')
        with pytest.raises(ValueError):
            load_flight_dump(bad)
        assert validate_flight_jsonl(bad.read_text())


class TestProcessWriter:
    def test_incremental_flush_appends_only_closed_spans(self, tmp_path):
        telemetry = Telemetry(id_base=process_id_base(1))
        writer = ProcessTelemetryWriter(telemetry, tmp_path, 1)
        open_span = telemetry.start_span("live.move", detached=True, object=7)
        done = telemetry.start_span("live.seed", detached=True, count=0)
        telemetry.end_span(done)
        assert writer.flush() == 1
        # Still-open spans are carried, then written once they close.
        telemetry.end_span(open_span)
        assert writer.flush() == 1
        lines = writer.spans_path.read_text().splitlines()
        assert [json.loads(ln)["name"] for ln in lines] == [
            "live.seed",
            "live.move",
        ]
        # Flushing again writes nothing new.
        assert writer.flush() == 0

    def test_metrics_snapshot_gets_node_label(self, tmp_path):
        telemetry = Telemetry(id_base=process_id_base(3))
        writer = ProcessTelemetryWriter(telemetry, tmp_path, 3)
        telemetry.metrics.counter("live.worker.attempts").inc(5)
        writer.flush()
        doc = json.loads(writer.metrics_path.read_text())
        assert doc["labels"]["node"] == 3
        assert doc["value"] == 5


class TestClockSync:
    def test_minimum_delta_wins(self):
        sync = ClockSync()
        sync.observe(1, 0, remote_sent=10.0, local_recv=12.5)
        sync.observe(1, 0, remote_sent=11.0, local_recv=13.1)
        sync.observe(1, 0, remote_sent=12.0, local_recv=14.9)
        assert sync.offset(1, 0) == pytest.approx(2.1)
        assert sync.offset(1, 1) is None
        assert sync.export() == [
            {"node": 1, "incarnation": 0, "offset": pytest.approx(2.1)}
        ]


class TestExporterPids:
    def test_sim_output_unchanged_without_live_args(self):
        telemetry = Telemetry()
        span = telemetry.start_span("move", node=2)
        telemetry.end_span(span)
        doc = to_chrome_trace(telemetry)
        # Historical synthetic mapping: node id is the pid lane.
        assert {e["pid"] for e in doc["traceEvents"]} == {-1, 2}

    def test_pid_map_and_os_pid_tag_move_lanes(self):
        telemetry = Telemetry()
        mapped = telemetry.start_span("a", node=2)
        telemetry.end_span(mapped)
        tagged = telemetry.start_span("b", node=2, os_pid=4321)
        telemetry.end_span(tagged)
        doc = to_chrome_trace(
            telemetry,
            pid_map={2: 1234},
            process_names={1234: "worker-2 (pid 1234)"},
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert {e["pid"] for e in spans} == {1234, 4321}
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[1234] == "worker-2 (pid 1234)"

    def test_time_scale_rescales_live_seconds(self):
        telemetry = Telemetry()
        span = telemetry.start_span("x", node=1)
        telemetry.end_span(span)
        span.start, span.end = 0.5, 1.5  # pin for determinism
        doc = to_chrome_trace(telemetry, time_scale=1e6)
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1e6)


class TestHubMerge:
    def _write_process(self, directory, node, incarnation, origin, spans):
        telemetry = Telemetry(id_base=process_id_base(node, incarnation))
        clock = WallClock()
        clock._origin = origin  # deterministic origins for the test
        telemetry.bind_clock(clock)
        writer = ProcessTelemetryWriter(
            telemetry,
            directory,
            node,
            incarnation=incarnation,
            role="supervisor" if node == SUPERVISOR else "worker",
            mono_origin=origin,
        )
        for name, tags in spans:
            telemetry.end_span(
                telemetry.start_span(name, node=node, detached=True, **tags)
            )
        writer.close()

    def test_merge_aligns_processes_and_validates(self, tmp_path):
        base = time.monotonic()
        # Worker started 2s *before* the supervisor, so at this real
        # instant its local clock reads ~2.0 while the supervisor's
        # reads ~0.0.  The origin-difference shift must bring both
        # spans (written at the same real moment) back together.
        self._write_process(
            tmp_path,
            SUPERVISOR,
            0,
            base,
            [("live.recover", {"mode": "central"})],
        )
        self._write_process(
            tmp_path, 1, 0, base - 2.0, [("live.seed", {"count": 0})]
        )
        (tmp_path / "manifest.json").write_text(
            json.dumps({"supervisor_origin": base, "clock_offsets": []})
        )
        merged = TelemetryHub(tmp_path).merge()
        assert merged["spans"] == 2
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "summary.txt").exists()
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert all(e["ts"] >= 0 for e in doc["traceEvents"])
        by_name = {
            e["name"]: e
            for e in doc["traceEvents"]
            if e["ph"] in ("X", "i")
        }
        delta_us = abs(
            by_name["live.recover"]["ts"] - by_name["live.seed"]["ts"]
        )
        assert delta_us < 0.2e6, "origin shift failed to align timelines"
        # The worker's pid lane carries its real OS pid.
        assert by_name["live.seed"]["pid"] == os.getpid()
        # Directory mode of the validator accepts the whole output.
        assert validate_main([str(tmp_path)]) == 0

    def test_clean_dir_removes_only_artifacts(self, tmp_path):
        self._write_process(
            tmp_path, 1, 0, 0.0, [("live.seed", {"count": 0})]
        )
        keep = tmp_path / "notes.md"
        keep.write_text("mine")
        removed = clean_telemetry_dir(tmp_path)
        assert removed == 2  # spans-*.jsonl + meta-*.json
        assert keep.exists()
        assert not list(tmp_path.glob("spans-*.jsonl"))


class TestValidatorDirectory:
    def test_empty_directory_fails(self, tmp_path):
        assert validate_main([str(tmp_path)]) == 1


def _run_kill_scenario(queue, telemetry_dir):
    config = SupervisorConfig(
        num_nodes=3,
        num_objects=60,
        target_migrations=60,
        max_duration=12.0,
        telemetry_dir=telemetry_dir,
    )
    chaos = kill_supervisor_schedule(config.num_nodes)
    queue.put(run_supervised(config, chaos))


class TestLiveTelemetrySmoke:
    def test_kill_run_produces_merged_trace_and_flight_dump(self, tmp_path):
        """The acceptance scenario: worker crash + supervisor kill.

        Asserts the observability bar end to end: a schema-valid merged
        Perfetto trace with >= 1 completed migration spanning >= 3 OS
        processes, killed processes' flight dumps attached to the
        recovery report, and no orphaned parents inside completed
        migration trees despite the restarts.  Runs in a child process
        under a hard watchdog.
        """
        telemetry_dir = str(tmp_path / "tele")
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        runner = ctx.Process(
            target=_run_kill_scenario, args=(queue, telemetry_dir)
        )
        runner.start()
        try:
            report = queue.get(timeout=SMOKE_TIMEOUT)
        finally:
            runner.join(5.0)
            if runner.is_alive():
                runner.kill()

        assert report["invariant_violations"] == []
        assert report["supervisor_recoveries"] >= 1

        # Flight dumps attached: at least the killed supervisor's.
        dumps = report["telemetry"]["flight_dumps"]
        assert any(d["node"] == SUPERVISOR for d in dumps)
        # Settlement cross-check produced well-formed verdicts.
        evidence = report["in_doubt"].get("flight_evidence", {})
        for entry in evidence.values():
            assert entry["verdict"] in ("commit", "rollback", "revert")

        merged = report["telemetry"]["merged"]
        assert merged["spans"] > 0
        assert validate_main([telemetry_dir]) == 0

        with open(merged["trace"]) as handle:
            doc = json.load(handle)
        spans = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        by_id = {e["args"]["span_id"]: e for e in spans}
        pids_by_trace = {}
        names_by_trace = {}
        for event in spans:
            pids_by_trace.setdefault(event["tid"], set()).add(event["pid"])
            names_by_trace.setdefault(event["tid"], set()).add(event["name"])
        migrations = [
            tid
            for tid, names in names_by_trace.items()
            if {"live.move", "live.grant", "live.place"} <= names
            and len(pids_by_trace[tid]) >= 3
        ]
        assert migrations, "no completed migration spans >= 3 OS processes"
        # Restarts must not orphan completed migration trees: every
        # span in a completed migration trace resolves its parent.
        migration_tids = set(migrations)
        for event in spans:
            if event["tid"] in migration_tids:
                parent = event["args"]["parent_id"]
                assert parent is None or parent in by_id
