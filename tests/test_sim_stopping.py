"""Unit tests for the §4.1 stopping rule."""

import numpy as np
import pytest

from repro.errors import StoppingRuleError
from repro.sim.stopping import PrecisionStopping, StoppingConfig


class TestStoppingConfig:
    def test_paper_preset(self):
        cfg = StoppingConfig.paper()
        assert cfg.relative_precision == 0.01
        assert cfg.confidence == 0.99

    def test_fast_preset_is_looser(self):
        fast, paper = StoppingConfig.fast(), StoppingConfig.paper()
        assert fast.relative_precision > paper.relative_precision
        assert fast.confidence < paper.confidence

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"relative_precision": 0.0},
            {"relative_precision": 1.0},
            {"confidence": 0.0},
            {"confidence": 1.5},
            {"min_batches": 1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(StoppingRuleError):
            StoppingConfig(**kwargs)


class TestPrecisionStopping:
    def test_does_not_stop_before_min_batches(self):
        rule = PrecisionStopping(
            StoppingConfig(batch_size=10, warmup=0, min_batches=5)
        )
        for _ in range(30):  # only 3 batches
            rule.add(1.0)
        assert not rule.precision_reached()

    def test_stops_on_tight_data(self):
        rule = PrecisionStopping(
            StoppingConfig(
                relative_precision=0.05,
                confidence=0.95,
                batch_size=20,
                warmup=0,
                min_batches=5,
            )
        )
        rng = np.random.default_rng(0)
        while not rule.should_stop():
            rule.add(10.0 + rng.normal(0, 0.5))
        assert not rule.capped
        assert rule.mean == pytest.approx(10.0, rel=0.05)

    def test_cap_triggers_on_noisy_data(self):
        rule = PrecisionStopping(
            StoppingConfig(
                relative_precision=0.0001,
                batch_size=10,
                warmup=0,
                min_batches=2,
                max_observations=500,
            )
        )
        rng = np.random.default_rng(1)
        steps = 0
        while not rule.should_stop():
            rule.add(rng.exponential(5.0))
            steps += 1
        assert rule.capped
        assert steps == 500

    def test_no_cap_config(self):
        cfg = StoppingConfig(
            max_observations=None, batch_size=50, warmup=0, min_batches=5
        )
        rule = PrecisionStopping(cfg)
        for _ in range(1000):
            rule.add(1.0)
        # Zero-variance data converges (halfwidth 0), never capped.
        assert rule.should_stop()
        assert not rule.capped

    def test_summary_fields(self):
        rule = PrecisionStopping(StoppingConfig.fast())
        rule.add(1.0)
        summary = rule.summary()
        assert set(summary) == {
            "mean",
            "observations",
            "batches",
            "relative_halfwidth",
            "confidence",
            "target",
            "converged",
            "capped",
        }
