"""Bounded multi-process smoke: the acceptance scenario under pytest.

Spawns a real supervisor + 3 worker OS processes over Unix sockets,
injects one data-plane partition and one node crash, and asserts the
acceptance criteria: >= 100 migrations, crash survived (restart with
lease recovery), partition survived, zero lock/placement invariant
violations.  The whole scenario runs under a hard wall-clock timeout
so CI cannot hang on a wedged worker.

Pure-logic pieces (config/schedule validation, the sim analog, the
loss estimator) are tested alongside without any processes.
"""

import multiprocessing
import os
import signal

import pytest

from repro.availability.livechaos import (
    LiveChaosSchedule,
    LiveCrash,
    LiveFaultWindow,
    LivePartition,
    demo_schedule,
)
from repro.runtime.live.demo import (
    estimate_transfer_loss,
    format_report,
    run_live_demo,
    simulate_analog,
)
from repro.runtime.live.supervisor import SupervisorConfig

#: Hard ceiling for the full multi-process scenario.
SMOKE_TIMEOUT = 120


def _run_demo_in_child(queue):
    config = SupervisorConfig(
        num_nodes=3,
        num_objects=120,
        target_migrations=150,
        max_duration=20.0,
    )
    queue.put(run_live_demo(config))


class TestLiveSmoke:
    def test_demo_survives_crash_and_partition(self):
        """The ISSUE acceptance scenario, wall-clock bounded.

        The demo runs in a child process so a wedged event loop is
        killed by the watchdog join instead of hanging pytest.
        """
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        runner = ctx.Process(target=_run_demo_in_child, args=(queue,))
        runner.start()
        try:
            report = queue.get(timeout=SMOKE_TIMEOUT)
        except Exception:
            runner.terminate()
            pytest.fail(
                f"live demo did not finish within {SMOKE_TIMEOUT}s"
            )
        finally:
            runner.join(10)
            if runner.is_alive():
                os.kill(runner.pid, signal.SIGKILL)

        measured = report["measured"]
        assert measured["workers"] == 3
        assert measured["objects"] == 120
        assert measured["migrations"] >= 100, (
            f"only {measured['migrations']} migrations"
        )
        assert measured["crashes_injected"] >= 1
        assert measured["partitions_injected"] >= 1
        assert measured["restarts"] >= 1, "crash recovery never ran"
        assert measured["invariant_violations"] == [], (
            measured["invariant_violations"]
        )
        # The report carries both sides of the comparison.
        assert 0.0 <= report["comparison"]["conflict_rate_predicted"] < 1.0
        assert 0.0 <= report["comparison"]["conflict_rate_measured"] < 1.0
        # And it renders.
        text = format_report(report)
        assert "invariant violations" in text
        assert "predicted" in text


class TestSimAnalog:
    def test_deterministic_under_fixed_seed(self):
        config = SupervisorConfig(num_nodes=3, num_objects=60, rng_seed=7)
        one = simulate_analog(config, transfer_loss=0.1)
        two = simulate_analog(config, transfer_loss=0.1)
        assert one == two

    def test_contention_rises_with_fewer_objects(self):
        crowded = simulate_analog(
            SupervisorConfig(num_nodes=4, num_objects=5)
        )
        sparse = simulate_analog(
            SupervisorConfig(num_nodes=4, num_objects=500)
        )
        assert crowded["conflict_rate"] > sparse["conflict_rate"]

    def test_transfer_loss_produces_aborts(self):
        config = SupervisorConfig(num_nodes=3, num_objects=100)
        clean = simulate_analog(config, transfer_loss=0.0)
        lossy = simulate_analog(config, transfer_loss=0.3)
        assert clean["abort_rate"] == 0.0
        assert lossy["abort_rate"] > 0.1


class TestLossEstimator:
    def test_no_chaos_no_loss(self):
        config = SupervisorConfig()
        assert estimate_transfer_loss(config, LiveChaosSchedule()) == 0.0

    def test_partition_contributes_cross_group_share(self):
        config = SupervisorConfig(max_duration=10.0)
        schedule = LiveChaosSchedule(
            actions=[LivePartition(at=0.0, duration=5.0, groups=((1,), (2,)))]
        )
        loss = estimate_transfer_loss(config, schedule)
        assert loss == pytest.approx(0.5 * 0.5)  # half the run, half cross

    def test_drop_window_needs_request_and_reply(self):
        config = SupervisorConfig(max_duration=10.0)
        schedule = LiveChaosSchedule(
            actions=[
                LiveFaultWindow(at=0.0, duration=10.0, drop_rate=0.5)
            ]
        )
        loss = estimate_transfer_loss(config, schedule)
        assert loss == pytest.approx(1.0 - 0.25)

    def test_crashes_do_not_count_as_loss_windows(self):
        config = SupervisorConfig()
        schedule = LiveChaosSchedule(actions=[LiveCrash(at=1.0)])
        assert estimate_transfer_loss(config, schedule) == 0.0


class TestValidation:
    def test_config_rejects_nonsense(self):
        with pytest.raises(ValueError):
            SupervisorConfig(num_nodes=0).validate()
        with pytest.raises(ValueError):
            SupervisorConfig(num_objects=0).validate()
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_interval=0).validate()

    def test_schedule_rejects_bad_actions(self):
        with pytest.raises(ValueError):
            LiveChaosSchedule(actions=[LiveCrash(at=-1.0)]).validate()
        with pytest.raises(ValueError):
            LiveChaosSchedule(
                actions=[LivePartition(at=0, duration=0, groups=((1,),))]
            ).validate()
        with pytest.raises(ValueError):
            LiveChaosSchedule(
                actions=[LiveFaultWindow(at=0, duration=1, drop_rate=1.5)]
            ).validate()

    def test_demo_schedule_has_crash_and_partition(self):
        schedule = demo_schedule(3)
        assert schedule.crashes >= 1
        assert schedule.partitions >= 1
        schedule.validate()

    def test_demo_schedule_needs_two_nodes(self):
        with pytest.raises(ValueError):
            demo_schedule(1)
