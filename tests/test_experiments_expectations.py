"""Tests for the mechanized paper-claim checker."""

import pytest

from repro.experiments.expectations import (
    PAPER_EXPECTATIONS,
    Claim,
    break_even_between,
    decreases_with_x,
    dominates,
    flat,
    format_verdicts,
    increases_with_x,
    value_at,
    verify_expectations,
)
from tests.test_experiments_plot import fake_result


@pytest.fixture
def fig12ish():
    """A synthetic result with Fig 12's qualitative shape."""
    return fake_result(
        {
            "without Migration": [1.35, 1.6, 1.8, 1.9],
            "Migration": [0.7, 1.9, 3.0, 5.9],
            "Transient Placement": [0.6, 1.3, 1.7, 2.2],
        },
        x_values=(1.0, 6.0, 12.0, 25.0),
        exp_id="fig12",
    )


class TestClaimConstructors:
    def test_flat_pass_and_fail(self, fig12ish):
        good = flat("without Migration", 1.7, tolerance=0.25)
        bad = flat("Migration", 1.0, tolerance=0.1)
        assert good.evaluate(fig12ish).passed
        assert not bad.evaluate(fig12ish).passed

    def test_dominates(self, fig12ish):
        assert dominates(
            "Transient Placement", "Migration", slack=1.05
        ).evaluate(fig12ish).passed
        assert not dominates(
            "Migration", "Transient Placement"
        ).evaluate(fig12ish).passed

    def test_break_even_between(self, fig12ish):
        claim = break_even_between(
            "Migration", "without Migration", 3.0, 8.0
        )
        verdict = claim.evaluate(fig12ish)
        assert verdict.passed
        assert "crossing at" in verdict.detail

    def test_break_even_no_crossing(self, fig12ish):
        claim = break_even_between(
            "Transient Placement", "Migration", 1.0, 25.0
        )
        assert not claim.evaluate(fig12ish).passed

    def test_trends(self, fig12ish):
        assert increases_with_x("Migration").evaluate(fig12ish).passed
        assert not decreases_with_x("Migration").evaluate(fig12ish).passed

    def test_value_at(self, fig12ish):
        assert value_at(
            "without Migration", 25.0, 1.93, tolerance=0.05
        ).evaluate(fig12ish).passed
        assert not value_at(
            "without Migration", 25.0, 5.0, tolerance=0.05
        ).evaluate(fig12ish).passed

    def test_claim_error_becomes_failure(self, fig12ish):
        broken = Claim("broken", lambda r: r.series("nope"))
        verdict = broken.evaluate(fig12ish)
        assert not verdict.passed
        assert "error" in verdict.detail


class TestVerification:
    def test_fig12_expectations_pass_on_shaped_data(self, fig12ish):
        verdicts = verify_expectations(fig12ish)
        assert len(verdicts) == len(PAPER_EXPECTATIONS["fig12"])
        assert all(v.passed for v in verdicts), [str(v) for v in verdicts]

    def test_unknown_figure_yields_no_claims(self):
        result = fake_result({"a": [1.0, 1.0]}, x_values=(1.0, 2.0))
        assert verify_expectations(result) == []

    def test_custom_claims_override(self, fig12ish):
        claims = [flat("without Migration", 1.7, tolerance=0.25)]
        verdicts = verify_expectations(fig12ish, claims=claims)
        assert len(verdicts) == 1

    def test_format_verdicts(self, fig12ish):
        text = format_verdicts(verify_expectations(fig12ish))
        assert "[PASS]" in text
        assert "paper claims hold" in text

    def test_registry_covers_every_figure(self):
        from repro.experiments.figures import FIGURES

        assert set(PAPER_EXPECTATIONS) == set(FIGURES)
