"""Unit tests for the state monitor."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.monitor import StateMonitor


class TestConfiguration:
    def test_interval_validation(self, env):
        with pytest.raises(ValueError):
            StateMonitor(env, interval=0)
        with pytest.raises(ValueError):
            StateMonitor(env, max_samples=0)

    def test_duplicate_probe_rejected(self, env):
        monitor = StateMonitor(env)
        monitor.probe("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            monitor.probe("x", lambda: 2)

    def test_unknown_probe_lookup(self, env):
        monitor = StateMonitor(env)
        with pytest.raises(KeyError):
            monitor.series("ghost")
        with pytest.raises(KeyError):
            monitor.stats("ghost")


class TestSampling:
    def test_samples_at_interval(self, env):
        monitor = StateMonitor(env, interval=10.0)
        monitor.probe("clock", lambda: env.now)
        monitor.start()
        env.run(until=35)
        series = monitor.series("clock")
        assert [t for t, _ in series] == [10.0, 20.0, 30.0]
        assert [v for _, v in series] == [10.0, 20.0, 30.0]

    def test_tracks_changing_state(self, env):
        state = {"value": 0}
        monitor = StateMonitor(env, interval=5.0)
        monitor.probe("v", lambda: state["value"])
        monitor.start()

        def mutator(env):
            yield env.timeout(7)
            state["value"] = 3
            yield env.timeout(10)
            state["value"] = 1

        env.process(mutator(env))
        env.run(until=21)
        values = [v for _, v in monitor.series("v")]
        assert values == [0.0, 3.0, 3.0, 1.0]

    def test_sample_now_immediate(self, env):
        monitor = StateMonitor(env)
        monitor.probe("c", lambda: 42)
        monitor.sample_now()
        assert monitor.series("c") == [(0.0, 42.0)]

    def test_start_idempotent(self, env):
        monitor = StateMonitor(env, interval=1.0)
        monitor.probe("x", lambda: 1)
        monitor.start()
        monitor.start()
        env.run(until=3.5)
        assert len(monitor.series("x")) == 3  # not doubled

    def test_retention_cap_keeps_stats(self, env):
        monitor = StateMonitor(env, interval=1.0, max_samples=5)
        monitor.probe("x", lambda: env.now)
        monitor.start()
        env.run(until=20.5)
        assert len(monitor.series("x")) == 5
        assert monitor.stats("x").count == 20  # stats keep counting

    def test_summary(self, env):
        monitor = StateMonitor(env, interval=2.0)
        monitor.probe("a", lambda: 1.0)
        monitor.probe("b", lambda: env.now)
        monitor.start()
        env.run(until=6.5)
        summary = monitor.summary()
        assert summary["a"]["mean"] == 1.0
        assert summary["b"]["max"] == 6.0
        assert summary["b"]["samples"] == 3


class TestIntegration:
    def test_monitoring_a_workload(self):
        """Monitor lock counts during a real placement run."""
        from repro.sim.stopping import StoppingConfig
        from repro.workload.clientserver import ClientServerWorkload
        from repro.workload.params import SimulationParameters

        params = SimulationParameters(
            policy="placement", clients=6, mean_interblock_time=5.0, seed=0
        )
        workload = ClientServerWorkload(
            params,
            stopping=StoppingConfig(
                relative_precision=0.3,
                confidence=0.9,
                batch_size=40,
                warmup=40,
                min_batches=2,
                max_observations=1_000,
            ),
        )
        monitor = StateMonitor(workload.system.env, interval=20.0)
        monitor.probe(
            "locks",
            lambda: len(workload.policy.locks.locked_objects()),
        )
        monitor.probe(
            "in_transit",
            lambda: sum(
                1 for o in workload.system.registry.objects if o.in_transit
            ),
        )
        monitor.start()
        workload.run()
        lock_stats = monitor.stats("locks")
        assert lock_stats.count > 10
        assert 0 <= lock_stats.max <= len(workload.servers)
        assert lock_stats.mean > 0  # locks were actually held sometimes
