"""Unit tests for the unified executor, the cell cache and the CLI flags."""

import os

import pytest

from repro.experiments.cache import (
    CellCache,
    cell_key,
    resolve_cache_dir,
)
from repro.experiments.cli import build_parser
from repro.experiments.executor import ParallelExecutor, resolve_workers
from repro.experiments.grid import Axis, sweep_grid
from repro.experiments.replications import run_replicated
from repro.experiments.runner import ExperimentRunner
from repro.sim.events import ConditionValue
from repro.sim.kernel import Environment
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)


class TestResolveWorkers:
    def test_positive_int_passes_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_auto_is_cpu_count(self):
        assert resolve_workers("auto") == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", ["four", "", "0", 1.5, None, True])
    def test_non_int_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestWorkersValidationEverywhere:
    """workers=0 must be rejected with the same error at every entry."""

    def test_experiment_runner(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ExperimentRunner(workers=0)

    def test_run_replicated(self):
        params = SimulationParameters(seed=0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_replicated(params, replicates=2, workers=0)

    def test_sweep_grid(self):
        base = SimulationParameters(seed=0)
        rows = Axis("clients", (1, 2))
        cols = Axis("seed", (0, 1))
        with pytest.raises(ValueError, match="workers must be >= 1"):
            sweep_grid(base, rows, cols, workers=0)

    def test_parallel_executor(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ParallelExecutor(workers=0)


class TestExecutorCounters:
    def test_serial_execution_counts_cells(self):
        executor = ParallelExecutor(workers=1)
        jobs = [
            (SimulationParameters(seed=seed), TINY) for seed in (0, 1, 2)
        ]
        results = executor.run_cells(jobs)
        assert len(results) == 3
        assert executor.cells_executed == 3
        assert executor.cache_hits == 0
        assert executor.cache_misses == 0
        counters = executor.counters()
        assert counters["cells_executed"] == 3

    def test_run_one_matches_run_cell(self):
        params = SimulationParameters(seed=5)
        direct = run_cell(params, stopping=TINY)
        via_executor = ParallelExecutor(workers=1).run_one(
            params, stopping=TINY
        )
        assert (
            via_executor.mean_communication_time_per_call
            == direct.mean_communication_time_per_call
        )


class TestCliFlags:
    def test_workers_auto(self):
        args = build_parser().parse_args(["fig8", "--workers", "auto"])
        assert args.workers == (os.cpu_count() or 1)

    def test_workers_positive_int(self):
        args = build_parser().parse_args(["fig8", "--workers", "3"])
        assert args.workers == 3

    @pytest.mark.parametrize("bad", ["0", "-2", "four"])
    def test_workers_invalid_exits(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--workers", bad])
        assert "--workers" in capsys.readouterr().err

    def test_cache_flag_default_off(self):
        assert build_parser().parse_args(["fig8"]).cache is False

    def test_cache_flag_on_off(self):
        assert build_parser().parse_args(["fig8", "--cache"]).cache is True
        assert (
            build_parser().parse_args(["fig8", "--no-cache"]).cache is False
        )


class TestCacheDir:
    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "explicit") == (
            tmp_path / "explicit"
        )

    def test_env_var_wins_over_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"

    def test_default_under_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir().name == "repro-objmig"


class TestCellKey:
    def test_stable_for_equal_inputs(self):
        a = cell_key(SimulationParameters(seed=1), TINY)
        b = cell_key(SimulationParameters(seed=1), TINY)
        assert a == b
        assert len(a) == 64  # hex SHA-256

    def test_sensitive_to_every_input(self):
        base = cell_key(SimulationParameters(seed=1), TINY)
        assert cell_key(SimulationParameters(seed=2), TINY) != base
        assert (
            cell_key(SimulationParameters(seed=1, clients=7), TINY) != base
        )
        assert cell_key(SimulationParameters(seed=1), None) != base
        assert (
            cell_key(SimulationParameters(seed=1), StoppingConfig.fast())
            != base
        )


class TestCellCache:
    def test_get_on_empty_cache_is_miss(self, tmp_path):
        cache = CellCache(root=tmp_path)
        assert cache.get(SimulationParameters(seed=0), TINY) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = CellCache(root=tmp_path)
        params = SimulationParameters(seed=4)
        result = run_cell(params, stopping=TINY)
        path = cache.put(params, TINY, result)
        assert path.is_file()
        assert len(cache) == 1

        loaded = cache.get(params, TINY)
        assert loaded is not None
        assert cache.hits == 1
        assert loaded.params == result.params
        assert (
            loaded.mean_communication_time_per_call
            == result.mean_communication_time_per_call
        )
        assert loaded.mean_call_duration == result.mean_call_duration
        assert (
            loaded.mean_migration_time_per_call
            == result.mean_migration_time_per_call
        )
        assert loaded.simulated_time == result.simulated_time
        assert loaded.raw == result.raw

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = CellCache(root=tmp_path)
        params = SimulationParameters(seed=4)
        result = run_cell(params, stopping=TINY)
        path = cache.put(params, TINY, result)
        path.write_text("{not json")
        assert cache.get(params, TINY) is None
        assert cache.misses == 1

    def test_wipe_removes_all_entries(self, tmp_path):
        cache = CellCache(root=tmp_path)
        result = run_cell(SimulationParameters(seed=4), stopping=TINY)
        for seed in (1, 2, 3):
            cache.put(SimulationParameters(seed=seed), TINY, result)
        assert len(cache) == 3
        assert cache.wipe() == 3
        assert len(cache) == 0

    def test_cache_honors_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
        cache = CellCache()
        assert cache.root == tmp_path / "from-env"


class TestConditionValueLookup:
    def test_membership_and_getitem_use_identity(self):
        env = Environment()
        a, b = env.event(), env.event()
        a._value, b._value = "va", "vb"
        value = ConditionValue()
        value.events.append(a)
        assert a in value
        assert b not in value
        assert value[a] == "va"
        with pytest.raises(KeyError):
            value[b]

        # Appending after a lookup must invalidate the cached index.
        value.events.append(b)
        assert b in value
        assert value[b] == "vb"
        assert list(value) == [a, b]
