"""Golden bit-identity: the heartbeat detector must be free when idle.

Enabling failure detection on a fault-free run must not change a single
metric relative to the ground-truth oracle path.  The mechanism is the
named-RNG-stream discipline: heartbeats draw latency from their own
``failure.heartbeat.<id>`` streams, so the workload's draw sequence is
untouched.  Any perturbation — an extra draw, a reordered event that
matters, a spurious suspicion-triggered failover — shows up here as an
exact-equality failure.
"""

import dataclasses

import pytest

from repro.availability import (
    FaultToleranceParameters,
    run_faulttolerance_cell,
)

#: Metrics that must match bit-for-bit between oracle and heartbeat.
COMPARED_FIELDS = [
    "mean_call_duration",
    "throughput",
    "completed_blocks",
    "abandoned_blocks",
    "failed_calls",
    "retries",
    "timeouts",
    "migrations_aborted",
    "locks_expired",
    "locks_broken",
    "node_failures",
]


def run_pair(seed, **kw):
    base = dict(
        policy="placement",
        lease_duration=30.0,
        sim_time=1500.0,
        seed=seed,
    )
    base.update(kw)
    oracle = run_faulttolerance_cell(
        FaultToleranceParameters(detection="oracle", **base)
    )
    heartbeat = run_faulttolerance_cell(
        FaultToleranceParameters(detection="heartbeat", **base)
    )
    return oracle, heartbeat


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestFaultFreeBitIdentity:
    def test_metrics_identical_to_oracle(self, seed):
        oracle, heartbeat = run_pair(seed)
        for name in COMPARED_FIELDS:
            assert getattr(heartbeat, name) == getattr(oracle, name), name

    def test_detector_stays_silent(self, seed):
        _, heartbeat = run_pair(seed)
        assert heartbeat.suspicions == 0
        assert heartbeat.false_suspicions == 0
        assert heartbeat.failovers == 0
        # The detector was really there, just quiet.
        assert heartbeat.raw["detector"]["heartbeats_received"] > 0
        assert heartbeat.raw["detector"]["heartbeats_lost"] == 0


class TestOracleFieldsUnchanged:
    def test_oracle_reports_no_detector_activity(self):
        oracle, _ = run_pair(seed=0)
        assert oracle.suspicions == 0
        assert oracle.false_suspicions == 0
        assert oracle.failovers == 0
        assert oracle.raw["detector"] == {}

    def test_result_fields_are_a_superset_of_golden(self):
        # Guard the comparison list against field renames.
        names = {f.name for f in dataclasses.fields(
            run_pair(seed=0)[0].__class__
        )}
        assert set(COMPARED_FIELDS) <= names
