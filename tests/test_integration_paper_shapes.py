"""End-to-end shape tests: the paper's qualitative claims, seeded.

These are the reproduction's acceptance tests.  They use a loose (but
non-trivial) stopping rule and fixed seeds; each asserts an *ordering*
or *trend* from §4, not absolute values.
"""

import pytest

from repro.analysis.breakeven import break_even, is_sublinear
from repro.experiments.figures import (
    FIG8_BASE,
    FIG12_BASE,
    FIG14_BASE,
    FIG16_BASE,
)
from repro.core.attachment import AttachmentMode
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=30_000,
)


def comm_time(params):
    return run_cell(params, stopping=STOP).mean_communication_time_per_call


@pytest.fixture(scope="module")
def fig8_curves():
    """Three policies over a small t_m sweep (Fig 8)."""
    tms = [4.0, 30.0, 100.0]
    out = {}
    for policy in ("sedentary", "migration", "placement"):
        out[policy] = [
            comm_time(
                FIG8_BASE.with_overrides(
                    policy=policy, mean_interblock_time=tm, seed=1
                )
            )
            for tm in tms
        ]
    return out


class TestFigure8:
    def test_sedentary_anchor_is_4_thirds(self, fig8_curves):
        for value in fig8_curves["sedentary"]:
            assert value == pytest.approx(4.0 / 3.0, rel=0.08)

    def test_migration_beats_sedentary_at_low_concurrency(self, fig8_curves):
        assert fig8_curves["migration"][-1] < fig8_curves["sedentary"][-1]
        assert fig8_curves["placement"][-1] < fig8_curves["sedentary"][-1]

    def test_placement_never_worse_than_migration(self, fig8_curves):
        for p, m in zip(fig8_curves["placement"], fig8_curves["migration"]):
            assert p <= m * 1.05  # small stochastic slack

    def test_cost_rises_with_concurrency(self, fig8_curves):
        """Duration of invocations generally increases with concurrency
        (i.e. as t_m falls)."""
        for policy in ("migration", "placement"):
            curve = fig8_curves[policy]
            assert curve[0] > curve[-1]


class TestFigure10And11:
    def test_decomposition(self):
        """Fig 10 + Fig 11 add up to Fig 8, and the migration share
        falls at maximum concurrency (callee already collocated)."""
        busy = run_cell(
            FIG8_BASE.with_overrides(
                policy="migration", mean_interblock_time=2.0, seed=1
            ),
            stopping=STOP,
        )
        quiet = run_cell(
            FIG8_BASE.with_overrides(
                policy="migration", mean_interblock_time=100.0, seed=1
            ),
            stopping=STOP,
        )
        for r in (busy, quiet):
            assert r.mean_communication_time_per_call == pytest.approx(
                r.mean_call_duration + r.mean_migration_time_per_call
            )
        # Call-duration component grows with concurrency...
        assert busy.mean_call_duration > quiet.mean_call_duration
        # ...while the migration component per call shrinks.
        assert (
            busy.mean_migration_time_per_call
            < quiet.mean_migration_time_per_call
        )


@pytest.fixture(scope="module")
def fig12_curves():
    clients = [1, 3, 6, 10, 15, 20, 25]
    out = {"x": clients}
    for policy in ("sedentary", "migration", "placement"):
        out[policy] = [
            comm_time(
                FIG12_BASE.with_overrides(policy=policy, clients=c, seed=2)
            )
            for c in clients
        ]
    return out


class TestFigure12:
    def test_sedentary_flattens_toward_2(self, fig12_curves):
        assert fig12_curves["sedentary"][-1] == pytest.approx(1.93, rel=0.08)

    def test_migration_break_even_near_6_clients(self, fig12_curves):
        be = break_even(
            fig12_curves["x"],
            fig12_curves["migration"],
            fig12_curves["sedentary"],
        )
        assert be is not None
        assert 3.5 <= be <= 9.0  # paper: 6

    def test_placement_break_even_far_beyond_migrations(self, fig12_curves):
        """Paper: migration breaks even at 6 clients, placement at 20.
        The seed-to-seed spread puts placement's point at 13-20; the
        robust claim is that it is at least ~2x migration's."""
        be_placement = break_even(
            fig12_curves["x"],
            fig12_curves["placement"],
            fig12_curves["sedentary"],
        )
        be_migration = break_even(
            fig12_curves["x"],
            fig12_curves["migration"],
            fig12_curves["sedentary"],
        )
        assert be_placement is not None and be_migration is not None
        assert 10.0 <= be_placement <= 25.0  # paper: 20
        assert be_placement >= 2.0 * be_migration

    def test_placement_growth_is_sublinear(self, fig12_curves):
        assert is_sublinear(fig12_curves["x"], fig12_curves["placement"])

    def test_migration_worst_at_high_client_counts(self, fig12_curves):
        assert fig12_curves["migration"][-1] > fig12_curves["placement"][-1]
        assert fig12_curves["migration"][-1] > fig12_curves["sedentary"][-1]


class TestFigure14:
    def test_dynamic_policies_track_placement(self):
        """§4.3: both strategies lead only to minor performance gains."""
        clients = [10, 20]
        for c in clients:
            base = comm_time(
                FIG14_BASE.with_overrides(policy="placement", clients=c, seed=3)
            )
            for policy in ("comparing", "reinstantiation"):
                dynamic = comm_time(
                    FIG14_BASE.with_overrides(policy=policy, clients=c, seed=3)
                )
                # Within +/-25% of conservative placement: no dramatic
                # win, no dramatic loss.
                assert dynamic == pytest.approx(base, rel=0.25)


@pytest.fixture(scope="module")
def fig16_values():
    cells = {
        "sedentary": ("sedentary", AttachmentMode.UNRESTRICTED, False),
        "mig+unrestricted": ("migration", AttachmentMode.UNRESTRICTED, False),
        "mig+atransitive": ("migration", AttachmentMode.A_TRANSITIVE, True),
        "place+unrestricted": ("placement", AttachmentMode.UNRESTRICTED, False),
        "place+atransitive": ("placement", AttachmentMode.A_TRANSITIVE, True),
    }
    out = {}
    for label, (policy, mode, ally) in cells.items():
        out[label] = comm_time(
            FIG16_BASE.with_overrides(
                policy=policy,
                attachment_mode=mode,
                use_alliances=ally,
                clients=10,
                seed=4,
            )
        )
    return out


class TestFigure16:
    def test_unrestricted_migration_is_devastating(self, fig16_values):
        assert fig16_values["mig+unrestricted"] > fig16_values["sedentary"]
        assert (
            fig16_values["mig+unrestricted"]
            > 1.5 * fig16_values["mig+atransitive"]
        )

    def test_a_transitivity_helps_migration(self, fig16_values):
        assert (
            fig16_values["mig+atransitive"]
            < fig16_values["mig+unrestricted"]
        )

    def test_placement_helps_under_both_attachment_modes(self, fig16_values):
        assert (
            fig16_values["place+unrestricted"]
            < fig16_values["mig+unrestricted"]
        )
        assert (
            fig16_values["place+atransitive"]
            < fig16_values["mig+atransitive"]
        )

    def test_placement_plus_alliances_is_best(self, fig16_values):
        best = fig16_values["place+atransitive"]
        for label, value in fig16_values.items():
            if label != "place+atransitive":
                assert best <= value * 1.05
