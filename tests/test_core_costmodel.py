"""Unit tests for the §3.2 analytic cost model."""

import pytest

from repro.core.costmodel import (
    CostParameters,
    cost_conventional_worst_case,
    cost_no_migration,
    cost_placement_concurrent,
    migration_break_even_clients,
    placement_advantage,
)


class TestParameters:
    def test_defaults_are_papers(self):
        p = CostParameters()
        assert p.remote_message_cost == 1.0
        assert p.migration_cost == 6.0
        assert p.calls_per_block == 8.0
        assert p.is_sensible  # N*C=8 > M=6

    def test_insensible_detected(self):
        p = CostParameters(calls_per_block=4.0)
        assert not p.is_sensible

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"remote_message_cost": -1},
            {"migration_cost": -1},
            {"calls_per_block": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CostParameters(**kwargs)


class TestPaperFormulas:
    def test_placement_formula(self):
        p = CostParameters(remote_message_cost=1, migration_cost=6,
                           calls_per_block=8)
        # M + (2N+1)*C = 6 + 17 = 23
        assert cost_placement_concurrent(p) == 23

    def test_conventional_worst_case_formula(self):
        p = CostParameters(remote_message_cost=1, migration_cost=6,
                           calls_per_block=8)
        # 2M + (2N+2)*C = 12 + 18 = 30
        assert cost_conventional_worst_case(p) == 30

    def test_advantage_is_m_plus_c(self):
        p = CostParameters(remote_message_cost=2, migration_cost=5,
                           calls_per_block=10)
        assert placement_advantage(p) == pytest.approx(5 + 2)

    def test_placement_always_cheaper_in_conflict(self):
        for m in (1, 6, 20):
            for n in (2, 8, 50):
                p = CostParameters(migration_cost=m, calls_per_block=n)
                assert cost_placement_concurrent(p) < (
                    cost_conventional_worst_case(p)
                )

    def test_no_migration_cost(self):
        p = CostParameters(calls_per_block=8)
        assert cost_no_migration(p, movers=2) == 32  # 2 * 2N * C


class TestBreakEven:
    def test_order_of_magnitude_matches_paper(self):
        p = CostParameters()  # the Fig 12 parameters
        estimate = migration_break_even_clients(p, nodes=27)
        assert 3 < estimate < 15  # paper's measured value is 6

    def test_increases_with_n_over_m(self):
        low = migration_break_even_clients(
            CostParameters(calls_per_block=8), nodes=27
        )
        high = migration_break_even_clients(
            CostParameters(calls_per_block=16), nodes=27
        )
        assert high > low

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            migration_break_even_clients(CostParameters(), nodes=1)
