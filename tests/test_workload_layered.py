"""Integration tests for the two-layer attachment workload (Fig 7)."""

import pytest

from repro.core.attachment import AttachmentMode
from repro.workload.clientserver import run_cell
from repro.workload.layered import LayeredWorkload
from repro.workload.params import SimulationParameters

FIG16ISH = SimulationParameters(
    nodes=24,
    clients=4,
    servers_layer1=6,
    servers_layer2=6,
    mean_calls_per_block=6.0,
    working_set_size=2,
)


class TestStructure:
    def test_requires_layer2(self):
        with pytest.raises(ValueError):
            LayeredWorkload(SimulationParameters(servers_layer2=0))

    def test_run_cell_dispatches_to_layered(self, tiny_stopping):
        result = run_cell(
            FIG16ISH.with_overrides(policy="sedentary"),
            stopping=tiny_stopping,
        )
        assert result.params.is_layered

    def test_working_sets_consecutive_with_overlap(self):
        w = LayeredWorkload(FIG16ISH)
        sets = [
            {m.name for m in w.working_sets[s.object_id]} for s in w.servers
        ]
        assert sets[0] == {"server2-0", "server2-1"}
        assert sets[1] == {"server2-1", "server2-2"}
        assert sets[5] == {"server2-5", "server2-0"}  # wrap-around

    def test_unrestricted_closure_is_whole_component(self):
        w = LayeredWorkload(
            FIG16ISH.with_overrides(
                attachment_mode=AttachmentMode.UNRESTRICTED
            )
        )
        closure = w.attachments.closure(w.servers[0])
        # Ring overlap chains all 6 + 6 servers together (§2.4 hazard).
        assert len(closure) == 12

    def test_a_transitive_closure_is_single_working_set(self):
        w = LayeredWorkload(
            FIG16ISH.with_overrides(
                attachment_mode=AttachmentMode.A_TRANSITIVE,
                use_alliances=True,
            )
        )
        server = w.servers[0]
        alliance = w.alliances[server.object_id]
        closure = alliance.working_set(server)
        assert len(closure) == 3  # the server + its 2 members

    def test_alliances_one_per_server(self):
        w = LayeredWorkload(FIG16ISH)
        assert len(w.alliances) == 6
        for server in w.servers:
            alliance = w.alliances[server.object_id]
            assert server in alliance
            assert len(alliance) == 3

    def test_layer2_nodes_offset_from_layer1(self):
        w = LayeredWorkload(FIG16ISH)
        assert [s.node_id for s in w.servers] == [0, 1, 2, 3, 4, 5]
        assert [s.node_id for s in w.layer2] == [6, 7, 8, 9, 10, 11]


class TestExecution:
    def test_unrestricted_migration_moves_whole_component(self, tiny_stopping):
        params = FIG16ISH.with_overrides(
            policy="migration",
            attachment_mode=AttachmentMode.UNRESTRICTED,
            clients=2,
        )
        w = LayeredWorkload(params, stopping=tiny_stopping)
        result = w.run()
        # Every granted block drags ~12 objects; migrations vastly
        # outnumber blocks.
        blocks = result.raw["metrics"]["blocks"]
        migrations = result.raw["migrations"]
        assert migrations > 4 * blocks

    def test_a_transitive_migration_moves_bounded_sets(self, tiny_stopping):
        params = FIG16ISH.with_overrides(
            policy="migration",
            attachment_mode=AttachmentMode.A_TRANSITIVE,
            use_alliances=True,
            clients=2,
        )
        result = run_cell(params, stopping=tiny_stopping)
        blocks = result.raw["metrics"]["blocks"]
        migrations = result.raw["migrations"]
        # At most 3 objects per block (plus occasional pre-placed hits).
        assert migrations <= 3 * blocks

    def test_exclusive_mode_runs(self, tiny_stopping):
        params = FIG16ISH.with_overrides(
            policy="placement",
            attachment_mode=AttachmentMode.EXCLUSIVE,
        )
        result = run_cell(params, stopping=tiny_stopping)
        assert result.mean_communication_time_per_call > 0

    def test_nested_calls_counted_once_per_outer_call(self, tiny_stopping):
        params = FIG16ISH.with_overrides(policy="sedentary", clients=1)
        w = LayeredWorkload(params, stopping=tiny_stopping)
        result = w.run()
        outer_calls = result.raw["metrics"]["calls"]
        total_invocations = w.system.invocations.durations.count
        # Each outer call makes exactly one nested call: the invocation
        # service saw both, the metric stream only the outer ones.  A
        # block still in flight at cutoff has invocations the metrics
        # never saw, so allow a small one-block-sized slack.
        assert total_invocations >= 2 * outer_calls
        assert total_invocations <= 2 * outer_calls + 100
