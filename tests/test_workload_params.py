"""Unit tests for SimulationParameters (Table 1)."""

import pytest

from repro.core.attachment import AttachmentMode
from repro.errors import ConfigurationError
from repro.workload.params import SimulationParameters


class TestValidation:
    def test_defaults_valid(self):
        SimulationParameters().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"clients": 0},
            {"servers_layer1": 0},
            {"servers_layer2": -1},
            {"migration_duration": -1},
            {"mean_calls_per_block": 0},
            {"mean_intercall_time": -1},
            {"mean_interblock_time": -0.5},
            {"mean_message_latency": -1},
            {"working_set_size": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationParameters(**kwargs).validate()

    def test_insensible_block_rejected_by_default(self):
        params = SimulationParameters(
            mean_calls_per_block=3.0, migration_duration=6.0
        )
        with pytest.raises(ConfigurationError, match="not sensible"):
            params.validate()
        params.validate(require_sensible=False)  # waivable

    def test_paper_fig17_parameters_are_sensible(self):
        # Fig 17 uses N~exp(6) with M=6: the condition is non-strict.
        SimulationParameters(
            mean_calls_per_block=6.0, migration_duration=6.0
        ).validate()

    def test_working_set_cannot_exceed_layer2(self):
        params = SimulationParameters(servers_layer2=2, working_set_size=3)
        with pytest.raises(ConfigurationError):
            params.validate()


class TestPlacementHelpers:
    def test_clients_round_robin(self):
        p = SimulationParameters(nodes=3, clients=7)
        assert [p.client_node(i) for i in range(5)] == [0, 1, 2, 0, 1]

    def test_servers_symmetric_with_clients(self):
        p = SimulationParameters(nodes=3, servers_layer1=3)
        assert [p.server_node(j) for j in range(3)] == [0, 1, 2]

    def test_layer2_offset(self):
        p = SimulationParameters(nodes=24, servers_layer1=6, servers_layer2=6)
        assert [p.layer2_node(k) for k in range(3)] == [6, 7, 8]

    def test_is_layered(self):
        assert not SimulationParameters().is_layered
        assert SimulationParameters(servers_layer2=4).is_layered


class TestMisc:
    def test_with_overrides_is_functional(self):
        base = SimulationParameters(clients=3)
        changed = base.with_overrides(clients=10, policy="migration")
        assert base.clients == 3
        assert changed.clients == 10
        assert changed.policy == "migration"

    def test_label_mentions_key_facts(self):
        p = SimulationParameters(
            policy="placement",
            servers_layer2=6,
            mean_calls_per_block=6.0,
            attachment_mode=AttachmentMode.A_TRANSITIVE,
        )
        label = p.label()
        assert "policy=placement" in label
        assert "S2=6" in label
        assert "a-transitive" in label

    def test_frozen(self):
        p = SimulationParameters()
        with pytest.raises(AttributeError):
            p.clients = 5
