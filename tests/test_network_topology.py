"""Unit tests for the network topologies."""

import pytest

from repro.network.topology import (
    TOPOLOGIES,
    FullyConnected,
    Grid,
    Line,
    Ring,
    Star,
    Topology,
    make_topology,
)


class TestFullyConnected:
    def test_hops(self):
        t = FullyConnected(5)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 4) == 1
        assert t.diameter() == 1

    def test_neighbors(self):
        t = FullyConnected(4)
        assert t.neighbors(1) == [0, 2, 3]

    def test_single_node(self):
        t = FullyConnected(1)
        assert t.neighbors(0) == []
        assert t.hops(0, 0) == 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            FullyConnected(0)

    def test_node_range_checked(self):
        t = FullyConnected(3)
        with pytest.raises(ValueError):
            t.hops(0, 3)


class TestRing:
    def test_circular_distance(self):
        t = Ring(6)
        assert t.hops(0, 1) == 1
        assert t.hops(0, 3) == 3
        assert t.hops(0, 5) == 1
        assert t.diameter() == 3

    def test_two_node_ring(self):
        t = Ring(2)
        assert t.neighbors(0) == [1]
        assert t.hops(0, 1) == 1

    def test_neighbors_wrap(self):
        t = Ring(5)
        assert sorted(t.neighbors(0)) == [1, 4]


class TestLine:
    def test_hops_are_abs_difference(self):
        t = Line(7)
        assert t.hops(1, 5) == 4
        assert t.diameter() == 6

    def test_endpoints_have_one_neighbor(self):
        t = Line(4)
        assert t.neighbors(0) == [1]
        assert t.neighbors(3) == [2]


class TestStar:
    def test_hub_is_one_hop_from_all(self):
        t = Star(6)
        assert t.hops(0, 5) == 1
        assert t.hops(3, 4) == 2
        assert t.diameter() == 2

    def test_leaf_neighbors(self):
        t = Star(4)
        assert t.neighbors(2) == [0]
        assert t.neighbors(0) == [1, 2, 3]


class TestGrid:
    def test_perfect_square(self):
        t = Grid(9)  # 3x3
        assert t.hops(0, 8) == 4  # (0,0) -> (2,2)
        assert t.hops(0, 1) == 1

    def test_ragged_grid_consistent_with_bfs(self):
        t = Grid(7)  # 3 cols x 3 rows, last row ragged
        for a in range(7):
            for b in range(7):
                assert t.hops(a, b) == Topology.hops(t, a, b)

    def test_neighbors_interior(self):
        t = Grid(9)
        assert sorted(t.neighbors(4)) == [1, 3, 5, 7]


class TestGenericMachinery:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_closed_forms_match_bfs(self, name):
        t = make_topology(name, 8)
        for a in range(8):
            for b in range(8):
                assert t.hops(a, b) == Topology.hops(t, a, b), (name, a, b)

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_hops_symmetric(self, name):
        t = make_topology(name, 9)
        for a in range(9):
            for b in range(9):
                assert t.hops(a, b) == t.hops(b, a)

    def test_mean_hops_full(self):
        assert FullyConnected(4).mean_hops() == 1.0

    def test_mean_hops_single_node(self):
        assert FullyConnected(1).mean_hops() == 0.0

    def test_edges_unique_and_sorted(self):
        edges = Ring(4).edges()
        assert edges == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("torus", 4)
