"""Property tests: the retry backoff schedule is clock-agnostic & sane.

The live backend reuses :class:`~repro.runtime.retry.RetryPolicy`
verbatim over wall-clock time, so the schedule's safety properties must
hold for *any* jitter seed and under *either* jitter source (the
simulation's numpy stream or the live ``RandomJitter``):

* the un-jittered envelope is monotonic non-decreasing and capped;
* every jittered delay stays inside ``[(1-jitter)·envelope, envelope]``
  — in particular it respects the configured cap;
* the absolute attempt schedule drawn from an injected clock is
  monotonic non-decreasing and bounded by ``worst_case_duration``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.clock import SimClock, WallClock
from repro.runtime.retry import RandomJitter, RetryPolicy
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams

POLICIES = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    timeout=st.floats(min_value=0.01, max_value=60.0),
    base=st.floats(min_value=0.0, max_value=8.0),
    cap=st.floats(min_value=8.0, max_value=120.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)


def jitter_sources(seed):
    """Both backends' jitter sources, same interface."""
    return [
        RandomStreams(seed).stream("invocation.retry"),
        RandomJitter(seed),
    ]


@given(policy=POLICIES)
@settings(max_examples=200, deadline=None)
def test_envelope_monotonic_and_capped(policy):
    previous = 0.0
    for k in range(16):
        env_k = policy.envelope(k)
        assert env_k >= previous, "envelope must be non-decreasing"
        assert env_k <= policy.cap + 1e-12, "envelope must respect the cap"
        previous = env_k


@given(policy=POLICIES, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_jittered_delays_respect_cap_under_any_seed(policy, seed):
    for stream in jitter_sources(seed):
        delays = list(policy.delays(stream))
        assert len(delays) == policy.max_attempts - 1
        for k, delay in enumerate(delays):
            envelope = policy.envelope(k)
            assert delay <= envelope + 1e-9, "jitter may only shrink"
            assert delay <= policy.cap + 1e-9, "cap holds under any seed"
            floor = envelope * (1.0 - policy.jitter)
            assert delay >= floor - 1e-9, "jitter is bounded below"
            assert delay >= 0.0


@given(
    policy=POLICIES,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    start=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=200, deadline=None)
def test_schedule_is_monotonic_from_an_injected_sim_clock(
    policy, seed, start
):
    clock = SimClock(Environment(initial_time=start))
    stream = RandomStreams(seed).stream("invocation.retry")
    schedule = policy.schedule(clock, stream)
    assert len(schedule) == policy.max_attempts
    assert schedule[0][0] == pytest.approx(start)
    previous_start = -math.inf
    for attempt_start, deadline in schedule:
        assert attempt_start >= previous_start, "starts are ordered"
        assert deadline == pytest.approx(attempt_start + policy.timeout)
        previous_start = attempt_start
    last_deadline = schedule[-1][1]
    worst = start + policy.worst_case_duration
    assert last_deadline <= worst + 1e-6, (
        "the schedule never outlives the documented worst case"
    )


@given(policy=POLICIES, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_schedule_under_a_wall_clock_is_monotonic(policy, seed):
    # The same policy against real time: the live backend's case.
    clock = WallClock()
    schedule = policy.schedule(clock, RandomJitter(seed))
    starts = [s for s, _ in schedule]
    assert starts == sorted(starts)
    assert all(d - s == pytest.approx(policy.timeout) for s, d in schedule)


def test_zero_jitter_schedule_is_deterministic():
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    env = Environment()
    one = policy.schedule(SimClock(env), RandomJitter(1))
    two = policy.schedule(SimClock(env), RandomJitter(2))
    assert one == two, "jitter-free schedules never consult the stream"


def test_delays_match_backoff_calls():
    policy = RetryPolicy(max_attempts=5, jitter=0.5)
    a = list(policy.delays(RandomJitter(7)))
    b = [policy.backoff(k, RandomJitter(7)) for k in range(4)]
    # Same seed but fresh stream per call in b: only the first draw
    # aligns; the schedule's contract is positional, not distributional.
    assert a[0] == b[0]
    assert len(a) == len(b)
