"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []
    for d in delay_list:
        env.timeout(d).callbacks.append(lambda e, d=d: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_clock_never_goes_backwards(delay_list):
    env = Environment()
    observed = []

    def watcher(env):
        last = env.now
        while True:
            yield env.timeout(0.5)
            assert env.now >= last
            last = env.now
            observed.append(env.now)
            if env.now > max(delay_list):
                return

    for d in delay_list:
        env.timeout(d)
    env.process(watcher(env))
    env.run()
    assert observed == sorted(observed)


@given(delays, delays)
def test_run_until_stops_exactly(first, second):
    """run(until=t) leaves the clock at exactly t and preserves later
    events for a subsequent run."""
    env = Environment()
    horizon = max(first) + 1.0
    for d in first + [horizon + d for d in second]:
        env.timeout(d)
    env.run(until=horizon)
    assert env.now == horizon
    env.run()
    assert env.now >= horizon


@given(st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20))
def test_process_chain_accumulates_delays(delay_list):
    """A process yielding a sequence of timeouts ends at their sum."""
    env = Environment()

    def proc(env):
        for d in delay_list:
            yield env.timeout(d)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert abs(p.value - sum(delay_list)) < 1e-6 * max(1.0, sum(delay_list))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_deterministic_replay(spec):
    """Two environments fed the same script produce identical traces."""

    def execute():
        env = Environment()
        trace = []

        def worker(env, delay, hops):
            for i in range(hops + 1):
                yield env.timeout(delay)
                trace.append((round(env.now, 9), delay, i))

        for delay, hops in spec:
            env.process(worker(env, delay, hops))
        env.run()
        return trace

    assert execute() == execute()
