"""Tests for experiment result persistence (JSON round-trip)."""

import json

import pytest

from repro.core.attachment import AttachmentMode
from repro.experiments.config import ExperimentDef, SeriesDef
from repro.experiments.persistence import (
    FORMAT_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.experiments.runner import ExperimentResult, run_figure
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_500,
)


@pytest.fixture(scope="module")
def result() -> ExperimentResult:
    base = SimulationParameters(
        policy="placement", attachment_mode=AttachmentMode.A_TRANSITIVE
    )
    defn = ExperimentDef(
        exp_id="persist-test",
        title="Persistence",
        x_label="t_m",
        x_values=(10.0, 40.0),
        series=(
            SeriesDef(
                "placement",
                lambda tm: base.with_overrides(mean_interblock_time=tm),
            ),
        ),
        notes="round-trip fixture",
    )
    return run_figure(defn, stopping=TINY)


class TestRoundTrip:
    def test_dict_round_trip_preserves_series(self, result):
        data = result_to_dict(result)
        back = result_from_dict(data)
        assert back.definition.exp_id == "persist-test"
        assert back.definition.x_values == (10.0, 40.0)
        assert back.series("placement") == result.series("placement")

    def test_params_survive_round_trip(self, result):
        back = result_from_dict(result_to_dict(result))
        cell = back.results["placement"][0]
        assert cell.params.policy == "placement"
        assert cell.params.attachment_mode is AttachmentMode.A_TRANSITIVE
        assert cell.params.mean_interblock_time == 10.0

    def test_file_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "nested" / "out.json")
        assert path.exists()
        back = load_result(path)
        assert back.series("placement") == result.series("placement")

    def test_document_is_valid_json_with_version(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert doc["format_version"] == FORMAT_VERSION
        assert doc["notes"] == "round-trip fixture"

    def test_unsupported_version_rejected(self, result):
        data = result_to_dict(result)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="unsupported format version"):
            result_from_dict(data)

    def test_raw_metadata_preserved(self, result):
        back = result_from_dict(result_to_dict(result))
        raw = back.results["placement"][0].raw
        assert raw["policy"]["policy"] == "placement"
        assert "metrics" in raw
