"""Property-based tests for the shared-resource primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.resources import Resource, Store, Waiters

hold_times = st.lists(
    st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=15
)


@given(hold_times, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_resource_capacity_never_exceeded(holds, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    in_use = [0]
    peak = [0]

    def worker(env, hold):
        yield resource.request()
        in_use[0] += 1
        peak[0] = max(peak[0], in_use[0])
        assert in_use[0] <= capacity
        yield env.timeout(hold)
        in_use[0] -= 1
        resource.release()

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert in_use[0] == 0
    assert peak[0] <= capacity
    assert resource.count == 0
    assert resource.queue_length == 0


@given(hold_times)
@settings(max_examples=40, deadline=None)
def test_mutex_grants_are_fifo(holds):
    env = Environment()
    resource = Resource(env)
    grant_order = []

    def worker(env, index, hold):
        # Stagger arrivals so the queue order is well-defined.
        yield env.timeout(index * 0.001)
        yield resource.request()
        grant_order.append(index)
        yield env.timeout(hold)
        resource.release()

    for index, hold in enumerate(holds):
        env.process(worker(env, index, hold))
    env.run()
    assert grant_order == sorted(grant_order)


@given(
    st.lists(st.integers(min_value=0, max_value=999), max_size=30),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_store_preserves_fifo_under_bounded_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)
            yield env.timeout(0.25)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
    assert len(store) == 0


@given(st.integers(min_value=0, max_value=20))
@settings(max_examples=30, deadline=None)
def test_waiters_wake_exactly_once_per_notification(n_waiters):
    env = Environment()
    cond = Waiters(env)
    wakeups = []

    def sleeper(env, tag):
        yield cond.wait()
        wakeups.append(tag)

    for i in range(n_waiters):
        env.process(sleeper(env, i))

    def notifier(env):
        yield env.timeout(1)
        count = cond.notify_all()
        assert count == n_waiters

    env.process(notifier(env))
    env.run()
    assert sorted(wakeups) == list(range(n_waiters))
    assert cond.waiting == 0
