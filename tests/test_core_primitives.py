"""Unit tests for the linguistic primitives layer."""

import pytest

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.placement import TransientPlacement
from repro.core.policies.sedentary import SedentaryPolicy
from repro.core.primitives import MigrationPrimitives
from repro.errors import ObjectFixedError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4, seed=0, migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )


@pytest.fixture
def prims(system):
    attachments = AttachmentManager()
    policy = TransientPlacement(system, attachments)
    return MigrationPrimitives(system, policy, attachments)


def run_fragment(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestFixing:
    def test_fix_unfix(self, system, prims):
        server = system.create_server(node=0)
        prims.fix(server)
        assert server.fixed
        prims.unfix(server)
        assert not server.fixed

    def test_fixed_object_cannot_migrate(self, system, prims):
        server = system.create_server(node=0)
        prims.fix(server)
        with pytest.raises(ObjectFixedError):
            run_fragment(system, prims.migrate(server, 1))

    def test_refix_moves_and_repins(self, system, prims):
        server = system.create_server(node=0)
        prims.fix(server)
        run_fragment(system, prims.refix(server, 3))
        assert server.node_id == 3
        assert server.fixed


class TestMigratePrimitive:
    def test_migrate_to_node(self, system, prims):
        server = system.create_server(node=0)
        run_fragment(system, prims.migrate(server, 2))
        assert prims.location_of(server) == 2
        assert prims.is_resident(server, 2)

    def test_migrate_to_object_collocates(self, system, prims):
        a = system.create_server(node=0)
        b = system.create_server(node=3)
        run_fragment(system, prims.migrate(a, b))
        assert a.node_id == 3

    def test_migrate_drags_attachments(self, system, prims):
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        prims.attach(b, a)
        run_fragment(system, prims.migrate(a, 2))
        assert a.node_id == 2
        assert b.node_id == 2

    def test_detach_stops_dragging(self, system, prims):
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        prims.attach(b, a)
        prims.detach(b, a)
        run_fragment(system, prims.migrate(a, 2))
        assert b.node_id == 1


class TestAllianceIntegration:
    def test_attach_within_alliance(self, system):
        manager = AllianceManager()
        policy = TransientPlacement(system, manager.attachments)
        prims = MigrationPrimitives(system, policy, manager.attachments)
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        alliance = manager.create("pair")
        alliance.admit(a)
        alliance.admit(b)
        assert prims.attach(a, b, alliance=alliance)
        assert alliance.partners_of(a) == [b]
        assert prims.detach(a, b, alliance=alliance)

    def test_attach_without_manager_raises(self, system):
        prims = MigrationPrimitives(system, SedentaryPolicy(system))
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        with pytest.raises(RuntimeError, match="no attachment manager"):
            prims.attach(a, b)


class TestMoveScope:
    def test_full_block_lifecycle(self, system, prims):
        server = system.create_server(node=2)
        client = system.create_client(node=0)

        def proc(env):
            scope = prims.move_block(client.node_id, server)
            yield from scope.enter()
            for _ in range(3):
                yield from scope.call()
            block = yield from scope.exit()
            return block

        p = system.env.process(proc(system.env))
        system.env.run()
        block = p.value
        assert block.granted
        assert block.call_count == 3
        # All calls local after the move: zero duration each.
        assert block.total_call_time == 0.0
        assert block.ended
        assert server.lock_holder is None

    def test_enter_twice_rejected(self, system, prims):
        server = system.create_server(node=1)
        scope = prims.move_block(0, server)
        run_fragment(system, scope.enter())
        with pytest.raises(RuntimeError, match="already entered"):
            run_fragment(system, scope.enter())

    def test_call_before_enter_rejected(self, system, prims):
        server = system.create_server(node=1)
        scope = prims.move_block(0, server)
        with pytest.raises(RuntimeError, match="before calling"):
            run_fragment(system, scope.call())

    def test_exit_before_enter_rejected(self, system, prims):
        server = system.create_server(node=1)
        scope = prims.move_block(0, server)
        with pytest.raises(RuntimeError, match="never entered"):
            run_fragment(system, scope.exit())


class TestVisitScope:
    def test_object_returns_home(self, system):
        policy = ConventionalMigration(system)
        prims = MigrationPrimitives(system, policy)
        server = system.create_server(node=3)

        def proc(env):
            scope = prims.visit_block(0, server)
            yield from scope.enter()
            assert server.node_id == 0
            yield from scope.call()
            block = yield from scope.exit()
            return block

        p = system.env.process(proc(system.env))
        system.env.run()
        assert server.node_id == 3  # migrated back
        assert server.migration_count == 2
        # Visit pays both transfers in its migration cost.
        assert p.value.migration_cost == pytest.approx(7.0 + 6.0)

    def test_rejected_visit_does_not_migrate_back(self, system):
        policy = TransientPlacement(system)
        prims = MigrationPrimitives(system, policy)
        server = system.create_server(node=3)

        def winner(env):
            scope = prims.move_block(1, server)
            yield from scope.enter()
            yield env.timeout(50)
            yield from scope.exit()

        def visitor(env):
            yield env.timeout(10)
            scope = prims.visit_block(0, server)
            yield from scope.enter()
            yield from scope.call()
            block = yield from scope.exit()
            return block

        system.env.process(winner(system.env))
        p = system.env.process(visitor(system.env))
        system.env.run()
        assert not p.value.granted
        assert server.migration_count == 1  # only the winner's transfer
