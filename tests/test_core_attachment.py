"""Unit tests for the attachment graph and its closure semantics."""

import pytest

from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.errors import AttachmentError
from repro.runtime.objects import DistributedObject


@pytest.fixture
def objects(env):
    return [
        DistributedObject(env, object_id=i, node_id=0, name=f"o{i}")
        for i in range(8)
    ]


class TestBasicAttach:
    def test_attach_and_query(self, objects):
        mgr = AttachmentManager()
        a, b = objects[0], objects[1]
        assert mgr.attach(a, b)
        assert mgr.is_attached(a, b)
        assert mgr.is_attached(b, a)
        assert mgr.neighbors(a) == [b]

    def test_self_attachment_rejected(self, objects):
        mgr = AttachmentManager()
        with pytest.raises(AttachmentError):
            mgr.attach(objects[0], objects[0])

    def test_attach_idempotent(self, objects):
        mgr = AttachmentManager()
        mgr.attach(objects[0], objects[1])
        mgr.attach(objects[0], objects[1])
        assert mgr.edge_count() == 1

    def test_detach(self, objects):
        mgr = AttachmentManager()
        a, b = objects[0], objects[1]
        mgr.attach(a, b)
        assert mgr.detach(a, b)
        assert not mgr.is_attached(a, b)
        assert not mgr.detach(a, b)  # second detach reports absence

    def test_detach_all(self, objects):
        mgr = AttachmentManager()
        a, b, c = objects[:3]
        mgr.attach(a, b)
        mgr.attach(c, a)
        assert mgr.detach_all(a) == 2
        assert mgr.neighbors(a) == []
        assert mgr.closure(b) == [b]


class TestUnrestrictedClosure:
    def test_closure_includes_self(self, objects):
        mgr = AttachmentManager()
        assert mgr.closure(objects[0]) == [objects[0]]

    def test_closure_is_connected_component(self, objects):
        mgr = AttachmentManager()
        a, b, c, d = objects[:4]
        mgr.attach(a, b)
        mgr.attach(b, c)
        mgr.attach(objects[4], objects[5])  # disjoint pair
        assert mgr.closure(a) == [a, b, c]
        assert mgr.closure(c) == [a, b, c]
        assert d not in mgr.closure(a)

    def test_overlap_chains_working_sets(self, objects):
        """The §2.4 hazard: overlapping working sets become one closure."""
        mgr = AttachmentManager()
        s1, s2, w1, shared, w2 = objects[:5]
        mgr.attach(w1, s1)
        mgr.attach(shared, s1)
        mgr.attach(shared, s2)
        mgr.attach(w2, s2)
        assert mgr.closure(s1) == [s1, s2, w1, shared, w2]

    def test_components(self, objects):
        mgr = AttachmentManager()
        mgr.attach(objects[0], objects[1])
        mgr.attach(objects[2], objects[3])
        comps = mgr.components()
        assert len(comps) == 2
        assert sorted(len(c) for c in comps) == [2, 2]


class TestATransitiveClosure:
    def test_closure_respects_context(self, objects):
        mgr = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        s1, s2, w1, shared, w2 = objects[:5]
        mgr.attach(w1, s1, context=1)
        mgr.attach(shared, s1, context=1)
        mgr.attach(shared, s2, context=2)
        mgr.attach(w2, s2, context=2)
        assert mgr.closure(s1, context=1) == [s1, w1, shared]
        assert mgr.closure(s2, context=2) == [s2, shared, w2]

    def test_no_context_follows_everything(self, objects):
        mgr = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        a, b, c = objects[:3]
        mgr.attach(a, b, context=1)
        mgr.attach(b, c, context=2)
        assert mgr.closure(a) == [a, b, c]

    def test_scoped_closure_subset_of_unrestricted(self, objects):
        mgr = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        a, b, c = objects[:3]
        mgr.attach(a, b, context=1)
        mgr.attach(b, c, context=2)
        scoped = set(mgr.closure(a, context=1))
        full = set(mgr.closure(a))
        assert scoped <= full

    def test_unrestricted_mode_ignores_context_filter(self, objects):
        mgr = AttachmentManager(AttachmentMode.UNRESTRICTED)
        a, b, c = objects[:3]
        mgr.attach(a, b, context=1)
        mgr.attach(b, c, context=2)
        # In unrestricted mode the context does not restrict closure.
        assert mgr.closure(a, context=1) == [a, b, c]

    def test_neighbors_context_filter(self, objects):
        mgr = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        a, b, c = objects[:3]
        mgr.attach(a, b, context=1)
        mgr.attach(a, c, context=2)
        assert mgr.neighbors(a, context=1) == [b]
        assert mgr.neighbors(a) == [b, c]


class TestExclusiveAttachment:
    def test_second_attachment_ignored(self, objects):
        mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
        child, p1, p2 = objects[:3]
        assert mgr.attach(child, p1)
        assert not mgr.attach(child, p2)
        assert mgr.ignored_attachments == 1
        assert mgr.is_attached(child, p1)
        assert not mgr.is_attached(child, p2)

    def test_reattach_same_parent_allowed(self, objects):
        mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
        child, parent = objects[:2]
        assert mgr.attach(child, parent)
        assert mgr.attach(child, parent)
        assert mgr.ignored_attachments == 0

    def test_parent_can_have_many_children(self, objects):
        mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
        parent = objects[0]
        for child in objects[1:4]:
            assert mgr.attach(child, parent)
        assert len(mgr.neighbors(parent)) == 3

    def test_detach_frees_exclusive_slot(self, objects):
        mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
        child, p1, p2 = objects[:3]
        mgr.attach(child, p1)
        mgr.detach(child, p1)
        assert mgr.attach(child, p2)

    def test_working_sets_stay_disjoint(self, objects):
        """§3.4: exclusive attachment yields disjoint working sets."""
        mgr = AttachmentManager(AttachmentMode.EXCLUSIVE)
        s1, s2, w1, shared, w2 = objects[:5]
        mgr.attach(w1, s1)
        mgr.attach(shared, s1)  # shared joins s1's set first
        mgr.attach(shared, s2)  # ignored
        mgr.attach(w2, s2)
        assert set(mgr.closure(s1)) == {s1, w1, shared}
        assert set(mgr.closure(s2)) == {s2, w2}
