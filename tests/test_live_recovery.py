"""Supervisor crash recovery: WAL replay, in-doubt settlement, chaos.

The pure pieces run without any processes: a hand-written WAL is
replayed into a fresh :class:`NodeSupervisor` (``recover=True``) and
the three-verdict settlement plan — *rollback* a transfer whose PLACE
was never logged, *commit* one whose PLACE is logged and whose
destination inventory confirms delivery, *revert* one whose logged
PLACE never reached the destination — is checked decision-by-decision
and then executed, asserting the journaled records, restored
placements and settlement notices.

The end-to-end smoke then SIGKILLs a real arbiter mid-migration
(:class:`KillSupervisor`) under both arbitration modes and asserts the
acceptance criteria: recovery happened, migrations continued, zero
inventory-audit violations.
"""

import asyncio
import multiprocessing
import os
import signal

import pytest

from repro.availability.livechaos import (
    KillSupervisor,
    LiveChaosSchedule,
    LiveCrash,
    LivePartition,
    kill_supervisor_schedule,
)
from repro.runtime.live import wal as wal_module
from repro.runtime.live.demo import run_supervised
from repro.runtime.live.supervisor import NodeSupervisor, SupervisorConfig
from repro.runtime.live.wal import ArbitrationWal
from repro.runtime.live.wire import EVICT, RESTORE

#: Hard ceiling for one full multi-process kill-and-recover scenario.
SMOKE_TIMEOUT = 150


def write_crash_wal(path):
    """The journal a SIGKILLed arbiter leaves behind, hand-written.

    Six objects on workers 1..3 (``oid % 3``), three transfers caught
    mid-flight: t1 granted but never placed, t2 and t3 placed but with
    the commit's delivery unknown.
    """
    with ArbitrationWal(path, fsync=False) as wal:
        wal.append(
            wal_module.INIT,
            {
                "num_objects": 6,
                "arbitration": "central",
                "workers": [1, 2, 3],
                "placement": {str(oid): 1 + oid % 3 for oid in range(6)},
            },
        )
        wal.append(wal_module.SUPER_START, {})
        wal.append(
            wal_module.GRANT,
            {
                "block_id": 1,
                "object_id": 0,
                "mover": 2,
                "source": 1,
                "transfer_id": 1,
            },
        )
        wal.append(
            wal_module.GRANT,
            {
                "block_id": 2,
                "object_id": 1,
                "mover": 3,
                "source": 2,
                "transfer_id": 2,
            },
        )
        wal.append(wal_module.PLACE, {"transfer_id": 2})
        wal.append(
            wal_module.GRANT,
            {
                "block_id": 3,
                "object_id": 2,
                "mover": 1,
                "source": 3,
                "transfer_id": 3,
            },
        )
        wal.append(wal_module.PLACE, {"transfer_id": 3})


@pytest.fixture
def recovered(tmp_path):
    """A supervisor rebuilt from the hand-written crash journal."""
    wal_path = str(tmp_path / "arbitration.wal")
    write_crash_wal(wal_path)
    config = SupervisorConfig(
        num_nodes=3,
        num_objects=6,
        socket_dir=str(tmp_path),
        wal_path=wal_path,
        wal_fsync=False,
    )
    supervisor = NodeSupervisor(config, recover=True)
    yield supervisor
    supervisor.wal.close()


class TestWalReplayRebuild:
    def test_placement_and_fences_rebuilt(self, recovered):
        # t2's PLACE moved object 1 to node 3; t3's likewise 2 -> 1.
        assert recovered.placement[1] == 3
        assert recovered.placement[2] == 1
        assert recovered.placement[0] == 1  # t1 never placed
        assert set(recovered.transfers) == {1, 2, 3}
        assert recovered.transfers[1].state == "pending"
        assert recovered.transfers[2].state == "placed"
        assert recovered._recovered_max_transfer == 3

    def test_open_blocks_revived_with_recorded_ids(self, recovered):
        assert set(recovered.blocks) == {1, 2, 3}
        for object_id in (0, 1, 2):
            assert recovered.locks.is_locked(recovered.records[object_id])
        recovered.locks.check_invariant()

    def test_recovering_supervisor_freezes_grants(self, recovered):
        from repro.runtime.live.wire import MOVE_REQUEST, SUPERVISOR, Envelope

        assert recovered._grants_frozen is True
        replies = []

        async def capture_reply(envelope, payload):
            replies.append(payload)

        recovered.transport.reply = capture_reply
        asyncio.run(
            recovered._serve_move_request(
                Envelope(
                    kind=MOVE_REQUEST,
                    src=2,
                    dst=SUPERVISOR,
                    msg_id=(2, 1),
                    payload={"object_id": 4, "mover": 2},
                )
            )
        )
        assert replies and replies[0]["granted"] is False

    def test_super_start_counted(self, recovered):
        assert recovered.supervisor_starts == 1


class TestSettlementPlan:
    def test_three_verdicts_from_inventories(self, recovered):
        plan = dict(
            (t.transfer_id, verdict)
            for verdict, t in recovered._plan_settlement(
                {
                    1: {"inventory": [0, 3]},  # object 2 missing: revert t3
                    2: {"inventory": [4]},
                    3: {"inventory": [1, 5]},  # object 1 present: commit t2
                }
            )
        )
        assert plan == {1: "rollback", 2: "commit", 3: "revert"}

    def test_dead_destination_commits_on_wal_authority(self, recovered):
        # No inventory for node 3: its restart re-seeds from placement,
        # so the logged commit stands.
        plan = dict(
            (t.transfer_id, verdict)
            for verdict, t in recovered._plan_settlement(
                {1: {"inventory": [0, 2, 3]}}
            )
        )
        assert plan[2] == "commit"

    def test_transfers_advanced_after_replay_are_not_in_doubt(
        self, recovered
    ):
        # A live PLACE served during the recovery grace window advances
        # the transfer past its WAL-recorded state: no longer in doubt.
        recovered.transfers[1].state = "placed"
        recovered.placement[0] = 2
        plan = dict(
            (t.transfer_id, verdict)
            for verdict, t in recovered._plan_settlement(
                {2: {"inventory": [0]}}
            )
        )
        assert 1 not in plan

    def test_transfers_minted_after_recovery_are_skipped(self, recovered):
        from repro.runtime.live.supervisor import Transfer

        recovered.transfers[4] = Transfer(
            transfer_id=4, object_id=5, src=3, dst=1, block_id=9
        )
        plan = dict(
            (t.transfer_id, verdict)
            for verdict, t in recovered._plan_settlement({})
        )
        assert 4 not in plan

    def test_superseded_placement_is_left_alone(self, recovered):
        # Another settled move already took object 1 elsewhere; the
        # stale placed transfer must not drag placement backwards.
        recovered.placement[1] = 2
        plan = dict(
            (t.transfer_id, verdict)
            for verdict, t in recovered._plan_settlement(
                {3: {"inventory": []}}
            )
        )
        assert 2 not in plan


class TestSettlementExecution:
    """Both the commit and the rollback path (plus revert) execute:
    journaled, counted, notified — the acceptance criterion's explicit
    'one in-doubt transfer through each path'."""

    def test_settle_in_doubt_executes_all_three_paths(self, recovered):
        notices = []
        recovered._notify = lambda node, kind, transfer: notices.append(
            (node, kind, transfer.transfer_id)
        )
        asyncio.run(
            recovered._settle_in_doubt(
                {
                    1: {"inventory": [0, 3]},
                    2: {"inventory": [4]},
                    3: {"inventory": [1, 5]},
                }
            )
        )
        # Rollback: t1's source keeps its held-back copy.
        assert recovered.transfers[1].state == "rolled_back"
        assert (1, RESTORE, 1) in notices
        # Commit: t2's source is told (again, idempotently) to evict.
        assert recovered.transfers[2].state == "placed"
        assert (2, EVICT, 2) in notices
        # Revert: t3's placement returns to the source, copy restored.
        assert recovered.transfers[3].state == "rolled_back"
        assert recovered.placement[2] == 3
        assert (3, RESTORE, 3) in notices
        assert recovered.in_doubt_rolled_back == 1
        assert recovered.in_doubt_committed == 1
        assert recovered.in_doubt_reverted == 1
        # Settled transfers released their fences; the journal shows
        # the decisions so a *second* crash replays to the same place.
        assert 1 not in recovered.blocks and 3 not in recovered.blocks
        state, _ = wal_module.replay(recovered.wal_path)
        assert state.transfers[1].state == "rolled_back"
        assert state.transfers[3].state == "rolled_back"
        assert state.placement[2] == 3


def _run_kill_scenario(arbitration, queue):
    config = SupervisorConfig(
        num_nodes=3,
        num_objects=60,
        target_migrations=100,
        max_duration=8.0,
        wal_fsync=False,
        orphan_grace=25.0,
        arbitration=arbitration,
        rng_seed=1,
    )
    chaos = kill_supervisor_schedule(config.num_nodes)
    queue.put(run_supervised(config, chaos))


class TestKillSupervisorSmoke:
    """SIGKILL the real arbiter mid-migration; the run must recover.

    One scenario per arbitration mode, each wall-clock bounded and run
    in a child process so a wedged event loop cannot hang pytest.
    """

    @pytest.mark.parametrize("arbitration", ["central", "home"])
    def test_arbiter_death_is_survived(self, arbitration):
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        runner = ctx.Process(
            target=_run_kill_scenario, args=(arbitration, queue)
        )
        runner.start()
        try:
            report = queue.get(timeout=SMOKE_TIMEOUT)
        except Exception:
            runner.terminate()
            pytest.fail(
                f"{arbitration} kill scenario did not finish "
                f"within {SMOKE_TIMEOUT}s"
            )
        finally:
            runner.join(10)
            if runner.is_alive():
                os.kill(runner.pid, signal.SIGKILL)

        assert report["supervisor_kills_injected"] == 1
        assert report["supervisor_recoveries"] == 1
        assert report["supervisor_incarnation"] == 2
        assert report["arbitration"] == arbitration
        assert report["migrations"] >= 50
        assert report["restarts"] >= 1, "worker crash recovery never ran"
        assert report["invariant_violations"] == [], report[
            "invariant_violations"
        ]
        assert report["wal"]["records_appended"] > 0
        if arbitration == "central":
            settled = report["in_doubt"]
            assert sum(settled.values()) >= 1, (
                "the kill landed without any in-doubt transfers"
            )
        else:
            assert report["home_reassignments"] >= 1


class TestChaosScheduleSurgery:
    def test_without_supervisor_kills_strips_and_reanchors(self):
        schedule = LiveChaosSchedule(
            actions=[
                LivePartition(at=0.5, duration=0.8, groups=((1,), (2, 3))),
                KillSupervisor(at=1.2),
                LiveCrash(at=1.8, node=2),
            ]
        )
        resumed = schedule.without_supervisor_kills()
        assert resumed.supervisor_kills == 0
        # The partition fired before the kill: consumed, gone.  The
        # crash survives, re-anchored relative to the kill.
        assert [type(a).__name__ for a in resumed.actions] == ["LiveCrash"]
        assert resumed.actions[0].at == pytest.approx(0.6)

    def test_without_kills_is_identity_when_none(self):
        schedule = LiveChaosSchedule(actions=[LiveCrash(at=1.0)])
        resumed = schedule.without_supervisor_kills()
        assert resumed.actions == schedule.actions

    def test_kill_supervisor_schedule_composes(self):
        schedule = kill_supervisor_schedule(3)
        assert schedule.supervisor_kills == 1
        assert schedule.crashes == 1
        assert schedule.partitions == 1
        schedule.validate()

    def test_config_rejects_unknown_arbitration(self):
        with pytest.raises(ValueError, match="arbitration"):
            SupervisorConfig(arbitration="quorum").validate()
