"""Behavioral tests for the five migration policies.

All scenarios use deterministic unit message latency and M = 6, so
every timing assertion is exact.
"""

import pytest

from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.core.moveblock import MoveBlock
from repro.core.policies.comparing import ComparingNodes
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.placement import TransientPlacement
from repro.core.policies.reinstantiation import ComparingReinstantiation
from repro.core.policies.registry import POLICIES, make_policy
from repro.core.policies.sedentary import SedentaryPolicy
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem
from repro.sim.trace import Tracer


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
        tracer=Tracer(),
    )


def do_move(system, policy, block):
    """Run a single move request to completion; returns the block."""

    def proc(env):
        yield from policy.move(block)

    system.env.process(proc(system.env))
    system.env.run()
    return block


def do_end(system, policy, block):
    def proc(env):
        yield from policy.end(block)

    system.env.process(proc(system.env))
    system.env.run()
    return block


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {
            "sedentary",
            "migration",
            "placement",
            "comparing",
            "reinstantiation",
        }

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_make_policy(self, system, name):
        policy = make_policy(name, system)
        assert policy.name == name

    def test_unknown_policy(self, system):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("teleport", system)


class TestSedentary:
    def test_move_is_free_noop(self, system):
        policy = SedentaryPolicy(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        assert system.env.now == 0.0
        assert not block.granted
        assert block.migration_cost == 0.0
        assert server.node_id == 2
        assert system.network.remote_messages == 0

    def test_end_is_free(self, system):
        policy = SedentaryPolicy(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        do_end(system, policy, block)
        assert block.ended
        assert system.env.now == 0.0


class TestConventional:
    def test_move_migrates_to_client(self, system):
        policy = ConventionalMigration(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        assert block.granted
        assert server.node_id == 0
        # 1 (request message) + 6 (transfer).
        assert block.migration_cost == pytest.approx(7.0)
        assert policy.moves_granted == 1

    def test_local_move_costs_nothing(self, system):
        policy = ConventionalMigration(system)
        server = system.create_server(node=0)
        block = do_move(system, policy, MoveBlock(0, server))
        assert block.granted
        assert block.migration_cost == 0.0
        assert server.migration_count == 0

    def test_concurrent_move_steals(self, system):
        policy = ConventionalMigration(system)
        server = system.create_server(node=3)
        order = []

        def mover(env, client_node, delay):
            yield env.timeout(delay)
            block = MoveBlock(client_node, server)
            yield from policy.move(block)
            order.append((env.now, client_node, server.node_id))

        system.env.process(mover(system.env, 0, 0))
        system.env.process(mover(system.env, 1, 1))
        system.env.run()
        # First mover: request 0->3 (1) + M (6) => t=7, object at 0.
        # Thief: starts t=1, request arrives t=2 while in transit; waits
        # until t=7, then transfers 6 more => t=13, object at 1.
        assert order == [(7.0, 0, 0), (13.0, 1, 1)]
        assert server.migration_count == 2

    def test_move_with_attachments_drags_closure(self, system):
        attachments = AttachmentManager()
        policy = ConventionalMigration(system, attachments)
        s = system.create_server(node=1)
        w1 = system.create_server(node=2)
        w2 = system.create_server(node=3)
        attachments.attach(w1, s)
        attachments.attach(w2, w1)  # transitively reachable
        block = do_move(system, policy, MoveBlock(0, s))
        assert block.moved_objects == 3
        assert {o.node_id for o in (s, w1, w2)} == {0}

    def test_end_releases_nothing(self, system):
        policy = ConventionalMigration(system)
        server = system.create_server(node=1)
        block = do_move(system, policy, MoveBlock(0, server))
        do_end(system, policy, block)
        assert server.node_id == 0  # object stays at the mover


class TestPlacement:
    def test_first_move_granted_and_locked(self, system):
        policy = TransientPlacement(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        assert block.granted
        assert server.node_id == 0
        assert server.lock_holder is block
        assert block.migration_cost == pytest.approx(7.0)

    def test_conflicting_move_rejected(self, system):
        policy = TransientPlacement(system)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        loser = do_move(system, policy, MoveBlock(1, server))
        assert not loser.granted
        assert server.node_id == 0  # stayed with the winner
        assert server.migration_count == 1
        # Loser paid only the request message.
        assert loser.migration_cost == pytest.approx(1.0)
        assert policy.moves_rejected == 1
        assert system.tracer.count("move.rejected") == 1

    def test_end_unlocks_and_allows_next_move(self, system):
        policy = TransientPlacement(system)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        do_end(system, policy, winner)
        assert server.lock_holder is None
        nxt = do_move(system, policy, MoveBlock(1, server))
        assert nxt.granted
        assert server.node_id == 1

    def test_rejected_end_is_ignored(self, system):
        policy = TransientPlacement(system)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        loser = do_move(system, policy, MoveBlock(1, server))
        do_end(system, policy, loser)  # "simply ignored"
        assert server.lock_holder is winner

    def test_no_extra_remote_operations(self, system):
        """§3.2's key property: placement never sends more remote
        messages than conventional migration for the same requests."""
        server = system.create_server(node=2)
        policy = TransientPlacement(system)
        winner = do_move(system, policy, MoveBlock(0, server))
        before = system.network.remote_messages
        loser = do_move(system, policy, MoveBlock(1, server))
        # Exactly one extra remote message: the loser's move request.
        assert system.network.remote_messages == before + 1
        do_end(system, policy, winner)
        do_end(system, policy, loser)
        # end-requests are local: no new remote messages.
        assert system.network.remote_messages == before + 1

    def test_locked_members_not_stolen(self, system):
        """§4.4: conflicting moves migrate neither the requested object
        nor the objects attached to it."""
        attachments = AttachmentManager(AttachmentMode.A_TRANSITIVE)
        policy = TransientPlacement(system, attachments)
        s1 = system.create_server(node=1)
        s2 = system.create_server(node=2)
        shared = system.create_server(node=3)
        attachments.attach(shared, s1, context=1)
        attachments.attach(shared, s2, context=2)

        class FakeAlliance:
            def __init__(self, alliance_id):
                self.alliance_id = alliance_id

        b1 = MoveBlock(0, s1, alliance=FakeAlliance(1))
        do_move(system, policy, b1)
        assert shared.lock_holder is b1

        b2 = MoveBlock(1, s2, alliance=FakeAlliance(2))
        do_move(system, policy, b2)
        assert b2.granted  # s2 itself was free
        assert s2.node_id == 1
        assert shared.node_id == 0  # held by b1: skipped, not stolen
        assert b2.moved_objects == 1


class TestComparing:
    def test_single_request_granted_like_placement(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        assert block.granted
        assert server.node_id == 0
        assert policy.open_requests(server) == {0: 1}

    def test_locked_object_rejected(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        do_move(system, policy, MoveBlock(0, server))
        loser = do_move(system, policy, MoveBlock(1, server))
        assert not loser.granted
        assert server.node_id == 0

    def test_minority_requester_refused_on_free_object(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        # Two open (rejected) requests pile up at node 1.
        w = do_move(system, policy, MoveBlock(0, server))
        do_move(system, policy, MoveBlock(1, server))
        do_move(system, policy, MoveBlock(1, server))
        do_end(system, policy, w)  # object free at node 0
        # A single new request from node 3 is a minority (1 < 2 at node 1).
        minority = do_move(system, policy, MoveBlock(3, server))
        assert not minority.granted
        assert server.node_id == 0

    def test_plurality_requester_granted_on_free_object(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        w = do_move(system, policy, MoveBlock(0, server))
        do_end(system, policy, w)
        b1 = do_move(system, policy, MoveBlock(1, server))  # 1 vs 0 open
        assert b1.granted
        assert server.node_id == 1

    def test_end_decrements_counts(self, system):
        policy = ComparingNodes(system)
        server = system.create_server(node=2)
        block = do_move(system, policy, MoveBlock(0, server))
        assert policy.open_requests(server) == {0: 1}
        do_end(system, policy, block)
        assert policy.open_requests(server) == {}


class TestReinstantiation:
    def test_margin_validation(self, system):
        with pytest.raises(ValueError):
            ComparingReinstantiation(system, majority_margin=0)

    def test_end_migrates_to_clear_majority(self, system):
        policy = ComparingReinstantiation(system, majority_margin=3)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        losers = [do_move(system, policy, MoveBlock(1, server)) for _ in range(3)]
        assert server.node_id == 0
        # Node 1 now holds 3 open requests vs 0 at node 0 after end.
        do_end(system, policy, winner)
        assert server.node_id == 1  # reinstantiated at the majority node
        assert policy.system_migrations == 1
        assert policy.system_migration_cost == pytest.approx(6.0)

    def test_no_migration_below_margin(self, system):
        policy = ComparingReinstantiation(system, majority_margin=3)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        do_move(system, policy, MoveBlock(1, server))
        do_move(system, policy, MoveBlock(1, server))
        do_end(system, policy, winner)  # 2 < margin 3
        assert server.node_id == 0
        assert policy.system_migrations == 0

    def test_stats_surface_system_migrations(self, system):
        policy = ComparingReinstantiation(system, majority_margin=1)
        server = system.create_server(node=2)
        winner = do_move(system, policy, MoveBlock(0, server))
        do_move(system, policy, MoveBlock(1, server))
        do_end(system, policy, winner)
        stats = policy.stats()
        assert stats["system_migrations"] == 1
        assert stats["policy"] == "reinstantiation"
