"""Unit tests for link fault injection and its pay-for-use guarantee."""

import pytest

from repro.errors import MessageLostError
from repro.network.faults import LinkFaultModel
from repro.network.latency import DeterministicLatency
from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.runtime.retry import RetryPolicy
from repro.runtime.system import DistributedSystem
from repro.sim.rng import RandomStreams


def make_net(env, streams, model=None):
    return Network(
        env,
        topology=FullyConnected(4),
        latency=DeterministicLatency(2.0),
        streams=streams,
        fault_model=model,
    )


class TestLinkFaultModel:
    def test_loss_probability_validated(self):
        with pytest.raises(ValueError, match="loss_probability"):
            LinkFaultModel(loss_probability=1.0)
        with pytest.raises(ValueError, match="loss_probability"):
            LinkFaultModel(loss_probability=-0.1)
        with pytest.raises(ValueError, match="link"):
            LinkFaultModel(link_loss={(0, 1): 1.5})

    def test_loss_for_precedence(self):
        model = LinkFaultModel(
            loss_probability=0.1, link_loss={(0, 1): 0.5}
        )
        assert model.loss_for(2, 3) == 0.1
        assert model.loss_for(0, 1) == 0.5  # per-link override
        assert model.loss_for(1, 0) == 0.1  # directed: reverse unaffected
        assert model.loss_for(2, 2) == 0.0  # local never lost
        model.fail_link(2, 3)
        assert model.loss_for(2, 3) == 1.0
        assert model.loss_for(3, 2) == 1.0  # fail_link cuts both ways

    def test_zero_loss_never_draws(self):
        # No stream bound: sampling would raise, so should_drop must
        # decide without drawing — the bit-identity guarantee.
        model = LinkFaultModel(loss_probability=0.0)
        assert model.should_drop(0, 1) is False
        assert model.dropped_messages == 0

    def test_down_link_drops_without_stream(self):
        model = LinkFaultModel()
        model.fail_link(0, 1)
        assert model.should_drop(0, 1) is True
        assert model.dropped_messages == 1
        assert model.dropped_by_link[(0, 1)] == 1

    def test_probabilistic_loss_requires_stream(self):
        model = LinkFaultModel(loss_probability=0.5)
        with pytest.raises(RuntimeError, match="no random stream"):
            model.should_drop(0, 1)

    def test_probabilistic_loss_rate(self, streams):
        model = LinkFaultModel(
            loss_probability=0.3, stream=streams.stream("t")
        )
        drops = sum(model.should_drop(0, 1) for _ in range(4_000))
        assert drops == model.dropped_messages
        assert 0.25 < drops / 4_000 < 0.35

    def test_partition_and_heal(self):
        model = LinkFaultModel()
        model.partition([0, 1], [2, 3])
        assert model.is_link_down(0, 2)
        assert model.is_link_down(3, 1)
        assert not model.is_link_down(0, 1)  # same side untouched
        assert len(model.down_links) == 8
        model.restore_link(0, 2)
        assert not model.is_link_down(2, 0)
        model.heal()
        assert model.down_links == set()


class TestTransmitWithFaults:
    def test_drop_raised_after_latency_spent(self, env, streams):
        model = LinkFaultModel()
        model.fail_link(0, 1)
        net = make_net(env, streams, model)

        def proc(env):
            try:
                yield from net.transmit(0, 1)
            except MessageLostError:
                return env.now
            return None

        p = env.process(proc(env))
        env.run()
        # The loss is observed where the receiver would have been: the
        # latency is on the wire before the drop surfaces.
        assert p.value == 2.0
        assert net.dropped_messages == 1

    def test_local_messages_never_dropped(self, env, streams):
        model = LinkFaultModel(loss_probability=0.999)
        net = make_net(env, streams, model)

        def proc(env):
            for _ in range(50):
                yield from net.transmit(1, 1)

        env.process(proc(env))
        env.run()
        assert net.dropped_messages == 0

    def test_install_faults_binds_dedicated_stream(self, env, streams):
        net = make_net(env, streams)
        assert net.faults is None
        model = LinkFaultModel(loss_probability=0.5)
        net.install_faults(model)
        assert net.faults is model
        assert model.should_drop(0, 1) in (True, False)  # stream bound


class TestPayForWhatYouUse:
    def _trace(self, fault_model, retry):
        """Timeline of a fixed invoke/migrate script on one system."""
        system = DistributedSystem(
            nodes=4, seed=99, fault_model=fault_model, retry=retry
        )
        server = system.create_server(node=3, name="s")
        out = []

        def proc():
            for _ in range(5):
                r = yield from system.invocations.invoke(0, server)
                out.append((system.now, r.duration, r.attempts))
            outcome = yield from system.migrations.migrate([server], 0)
            out.append((system.now, outcome.elapsed, outcome.moved_count))
            for _ in range(5):
                r = yield from system.invocations.invoke(0, server)
                out.append((system.now, r.duration, r.attempts))

        system.env.process(proc(), name="script")
        system.run()
        return out

    def test_zero_loss_model_is_bit_identical_to_no_model(self):
        # Installing the fault layer with everything off must not move
        # a single event: same seed, same draws, same timeline.
        plain = self._trace(fault_model=None, retry=None)
        gated = self._trace(
            fault_model=LinkFaultModel(loss_probability=0.0),
            retry=RetryPolicy(),
        )
        assert plain == gated
