"""Unit tests for the Network facade."""

import pytest

from repro.network.latency import DeterministicLatency
from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams


@pytest.fixture
def net(env, streams):
    return Network(
        env,
        topology=FullyConnected(4),
        latency=DeterministicLatency(2.0),
        streams=streams,
    )


class TestTransmit:
    def test_remote_message_takes_latency(self, env, net):
        def proc(env):
            delay = yield from net.transmit(0, 1)
            return (env.now, delay)

        p = env.process(proc(env))
        env.run()
        assert p.value == (2.0, 2.0)

    def test_local_message_is_instant(self, env, net):
        def proc(env):
            delay = yield from net.transmit(3, 3)
            return (env.now, delay)

        p = env.process(proc(env))
        env.run()
        assert p.value == (0.0, 0.0)

    def test_round_trip_sums_both_legs(self, env, net):
        def proc(env):
            total = yield from net.round_trip(0, 2)
            return (env.now, total)

        p = env.process(proc(env))
        env.run()
        assert p.value == (4.0, 4.0)

    def test_message_accounting(self, env, net):
        def proc(env):
            yield from net.transmit(0, 1)
            yield from net.transmit(1, 1)
            yield from net.round_trip(2, 3)

        env.process(proc(env))
        env.run()
        assert net.remote_messages == 3
        assert net.local_messages == 1
        assert net.total_latency == pytest.approx(6.0)

    def test_size_property(self, net):
        assert net.size == 4

    def test_default_network_is_paper_model(self, env):
        net = Network(env)
        assert type(net.latency).__name__ == "NormalizedExponentialLatency"
