"""Unit tests for span lifecycle and per-process context propagation."""

import pytest

from repro.sim.kernel import Environment
from repro.telemetry import (
    ERROR,
    NULL_SPAN,
    NULL_TELEMETRY,
    OK,
    OPEN,
    NullTelemetry,
    Telemetry,
)


class TestSpanLifecycle:
    def test_start_end_basic(self):
        tel = Telemetry()
        span = tel.start_span("op", node=2, foo="bar")
        assert span.is_open
        assert span.status == OPEN
        assert span.tags == {"foo": "bar"}
        tel.end_span(span)
        assert not span.is_open
        assert span.status == OK

    def test_root_spans_get_fresh_traces(self):
        tel = Telemetry()
        a = tel.end_span(tel.start_span("a"))
        b = tel.end_span(tel.start_span("b"))
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_nesting_inherits_trace(self):
        tel = Telemetry()
        parent = tel.start_span("parent")
        child = tel.start_span("child")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        tel.end_span(child)
        tel.end_span(parent)

    def test_current_restored_after_end(self):
        tel = Telemetry()
        parent = tel.start_span("parent")
        child = tel.start_span("child")
        assert tel.current_span() is child
        tel.end_span(child)
        assert tel.current_span() is parent
        tel.end_span(parent)
        assert tel.current_span() is None

    def test_explicit_parent_links_across_contexts(self):
        tel = Telemetry()
        parent = tel.start_span("migration")
        # Simulate a freshly spawned process that received the parent
        # explicitly (its own context has no current span).
        tel._current.clear()
        child = tel.start_span("transfer", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_end_is_idempotent(self):
        env = Environment()
        tel = Telemetry()
        tel.bind(env)
        span = tel.start_span("op")
        tel.end_span(span, status=ERROR)
        first_end = span.end
        tel.end_span(span)  # second end must not overwrite
        assert span.status == ERROR
        assert span.end == first_end

    def test_sim_time_stamps(self):
        env = Environment()
        tel = Telemetry()
        tel.bind(env)

        def proc(env):
            span = tel.start_span("op")
            yield env.timeout(4.0)
            tel.end_span(span)
            return span

        p = env.process(proc(env))
        env.run()
        assert p.value.start == 0.0
        assert p.value.end == 4.0
        assert p.value.duration == 4.0

    def test_context_manager_tags_errors(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("op") as span:
                raise ValueError("boom")
        assert span.status == ERROR
        assert span.tags["error"] == "ValueError"
        assert not span.is_open

    def test_max_spans_drops_but_still_links(self):
        tel = Telemetry(max_spans=1)
        a = tel.start_span("kept")
        b = tel.start_span("dropped")
        assert len(tel.spans) == 1
        assert tel.spans_dropped == 1
        assert b.trace_id == a.trace_id  # context still propagates
        tel.end_span(b)
        tel.end_span(a)

    def test_spans_named_and_open_spans(self):
        tel = Telemetry()
        a = tel.start_span("x")
        tel.end_span(a)
        b = tel.start_span("x")
        assert tel.spans_named("x") == [a, b]
        assert tel.open_spans() == [b]
        tel.end_span(b)
        assert tel.open_spans() == []


class TestPerProcessContext:
    def test_interleaved_processes_keep_separate_stacks(self):
        """Two processes alternating between yields must not see each
        other's current span."""
        env = Environment()
        tel = Telemetry()
        tel.bind(env)
        observed = {}

        def worker(env, name, delay):
            span = tel.start_span(name)
            yield env.timeout(delay)
            observed[name] = tel.current_span()
            tel.end_span(span)

        env.process(worker(env, "a", 1.0))
        env.process(worker(env, "b", 1.0))
        env.run()
        assert observed["a"].name == "a"
        assert observed["b"].name == "b"
        # Separate roots -> separate traces.
        spans = tel.spans
        assert spans[0].trace_id != spans[1].trace_id


class TestKernelSampler:
    def test_sampler_records_series(self):
        env = Environment()
        tel = Telemetry()
        tel.start_kernel_sampler(env, interval=10.0)

        def busywork(env):
            for _ in range(20):
                yield env.timeout(5.0)

        env.process(busywork(env))
        env.run(until=100.0)
        depth = tel.metrics.gauge("kernel.queue_depth")
        assert depth.series  # sampled at least once
        scheduled = tel.metrics.gauge("kernel.events_scheduled")
        assert scheduled.value > 0
        assert tel.metrics.gauge("kernel.sim_time").value >= 90.0

    def test_sampler_idempotent(self):
        env = Environment()
        tel = Telemetry()
        tel.start_kernel_sampler(env, interval=10.0)
        tel.start_kernel_sampler(env, interval=10.0)
        env.run(until=25.0)
        # Exactly one sampler: one sample per interval tick.
        samples = tel.metrics.gauge("kernel.queue_depth").series
        assert len(samples) == 3  # t=0, 10, 20

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Telemetry().start_kernel_sampler(Environment(), interval=0)


class TestNullTelemetry:
    def test_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert Telemetry().enabled

    def test_records_nothing(self):
        tel = NullTelemetry()
        span = tel.start_span("op", node=1)
        assert span is NULL_SPAN
        tel.end_span(span)
        with tel.span("other"):
            pass
        assert tel.spans == []
        assert tel.current_span() is None
        assert len(tel.metrics) == 0

    def test_null_span_inert(self):
        assert NULL_SPAN.tag(x=1) is NULL_SPAN
        assert NULL_SPAN.tags == {}

    def test_sampler_noop(self):
        env = Environment()
        NULL_TELEMETRY.start_kernel_sampler(env)
        assert len(env) == 0  # no process scheduled
