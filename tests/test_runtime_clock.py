"""The Clock/Transport seam itself: both backends honour one contract."""

import asyncio
import time

import pytest

from repro.network import Network, SimTransport
from repro.runtime.clock import Clock, SimClock, WallClock
from repro.runtime.transport import Transport
from repro.sim.kernel import Environment


class TestSimClock:
    def test_now_tracks_environment(self):
        env = Environment(initial_time=5.0)
        clock = SimClock(env)
        assert clock.now() == 5.0

    def test_deadline_and_expiry(self):
        env = Environment(initial_time=10.0)
        clock = SimClock(env)
        deadline = clock.deadline(2.5)
        assert deadline == 12.5
        assert not clock.expired(deadline)

    def test_sleep_is_the_kernels_sleep(self):
        env = Environment()
        clock = SimClock(env)
        log = []

        def proc():
            yield clock.sleep(3.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [3.0]


class TestWallClock:
    def test_starts_near_zero_and_advances(self):
        clock = WallClock()
        first = clock.now()
        assert first < 1.0
        time.sleep(0.01)
        assert clock.now() > first

    def test_deadline_arithmetic(self):
        clock = WallClock()
        deadline = clock.deadline(30.0)
        assert not clock.expired(deadline)
        assert clock.expired(clock.now() - 0.001)

    def test_sleep_is_awaitable(self):
        clock = WallClock()

        async def nap():
            before = clock.now()
            await clock.sleep(0.02)
            return clock.now() - before

        elapsed = asyncio.run(nap())
        assert elapsed >= 0.015


class TestSeamContracts:
    def test_both_clocks_are_clocks(self):
        assert isinstance(SimClock(Environment()), Clock)
        assert isinstance(WallClock(), Clock)

    def test_sim_network_is_a_transport(self):
        # Virtual subclassing via the simbackend adapter registration.
        network = Network(Environment())
        assert isinstance(network, Transport)

    def test_sim_transport_adapter_delegates_counters(self):
        network = Network(Environment())
        adapter = SimTransport(network)
        assert adapter.size == network.size
        assert adapter.remote_messages == network.remote_messages
        stats = adapter.stats()
        assert set(stats) >= {
            "remote_messages",
            "local_messages",
            "dropped_messages",
        }
