"""Integration tests: telemetry wired through the runtime stack.

Covers the PR's observability contract end to end — span context
propagation across forwarding chains, migration abort/rollback spans
closing with error status (never leaking open), place-policy rejection
trees, and bit-identical results with telemetry disabled.
"""

import dataclasses

import pytest

from repro.availability.faulttolerance import (
    FaultToleranceParameters,
    FaultToleranceWorkload,
)
from repro.core.moveblock import MoveBlock
from repro.core.policies.placement import TransientPlacement
from repro.network.faults import LinkFaultModel
from repro.network.latency import DeterministicLatency
from repro.runtime.locator import ForwardingLocator
from repro.runtime.system import DistributedSystem
from repro.telemetry import ERROR, OK, Telemetry


def make_system(telemetry, locator=None, fault_model=None, nodes=4):
    system = DistributedSystem(
        nodes=nodes,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
        fault_model=fault_model,
        telemetry=telemetry,
    )
    if locator == "forwarding":
        system.locator = ForwardingLocator(system.env, system.network)
        system.invocations.locator = system.locator
        system.migrations.locator = system.locator
    return system


def run_to_completion(system, *procs):
    for proc in procs:
        system.env.process(proc())
    system.run()


def by_id(telemetry):
    return {s.span_id: s for s in telemetry.spans}


class TestForwardingChainPropagation:
    def test_locate_span_carries_hops_and_parent(self):
        tel = Telemetry()
        system = make_system(tel, locator="forwarding")
        obj = system.create_server(node=2, name="s")

        def stale_caller():
            # Refresh caller 0's knowledge, then let the object move
            # twice so the next call chases a 2-hop forwarding chain.
            yield from system.invocations.invoke(0, obj)
            for _ in range(2):
                system.locator.note_migration(obj, 3)
            yield from system.invocations.invoke(0, obj)

        run_to_completion(system, stale_caller)

        locates = tel.spans_named("locate")
        assert len(locates) == 2
        fresh, chased = locates
        assert fresh.tags["hops"] == 0
        assert chased.tags["hops"] == 2
        assert chased.tags["dst"] == obj.node_id

        # Each locate is a child of its invocation, same trace.
        invocations = tel.spans_named("invocation")
        assert len(invocations) == 2
        for inv, loc in zip(invocations, locates):
            assert loc.parent_id == inv.span_id
            assert loc.trace_id == inv.trace_id

        assert tel.open_spans() == []
        assert all(s.status == OK for s in tel.spans)

    def test_locate_hops_metric_free_lookup(self):
        tel = Telemetry()
        system = make_system(tel)  # immediate-update locator
        obj = system.create_server(node=1, name="s")

        def caller():
            yield from system.invocations.invoke(0, obj)

        run_to_completion(system, caller)
        (locate,) = tel.spans_named("locate")
        assert "hops" not in locate.tags  # only ForwardingLocator reports
        assert locate.status == OK


class TestMigrationRollbackSpans:
    def test_lost_transfer_rolls_back_with_error_spans(self):
        model = LinkFaultModel()
        model.fail_link(0, 2)
        tel = Telemetry()
        system = make_system(tel, fault_model=model, nodes=3)
        obj = system.create_server(node=0, name="s")

        def mover():
            yield from system.migrations.migrate([obj], 2)

        run_to_completion(system, mover)

        (mig,) = tel.spans_named("migration")
        (transfer,) = tel.spans_named("transfer")
        (rollback,) = tel.spans_named("rollback")

        assert transfer.status == ERROR
        assert transfer.parent_id == mig.span_id
        assert rollback.parent_id == transfer.span_id
        assert rollback.trace_id == mig.trace_id
        assert mig.tags["aborted"] == 1
        # Rollback covers the return trip: as long as the outbound leg.
        assert rollback.duration == pytest.approx(6.0)

        assert tel.open_spans() == []
        aborted = tel.metrics.counter("migration.aborted", reason="transfer-lost")
        assert aborted.value == 1

    def test_fast_abort_closes_span_with_error(self):
        tel = Telemetry()
        system = make_system(tel, nodes=3)

        class DeadNode2:
            def is_down(self, node_id):
                return node_id == 2

        system.migrations.health = DeadNode2()
        obj = system.create_server(node=0, name="s")

        def mover():
            yield from system.migrations.migrate([obj], 2)

        run_to_completion(system, mover)

        (transfer,) = tel.spans_named("transfer")
        assert transfer.status == ERROR
        assert transfer.duration == 0.0  # rejected before transit
        assert tel.spans_named("rollback") == []
        assert tel.open_spans() == []
        assert tel.metrics.counter("migration.aborted", reason="node-down").value == 1

    def test_successful_migration_spans_clean(self):
        tel = Telemetry()
        system = make_system(tel, nodes=2)
        obj = system.create_server(node=0, name="s")

        def mover():
            yield from system.migrations.migrate([obj], 1)

        run_to_completion(system, mover)
        (transfer,) = tel.spans_named("transfer")
        assert transfer.status == OK
        assert transfer.duration == pytest.approx(6.0)
        assert tel.metrics.counter("migration.moves").value == 1
        assert tel.open_spans() == []


class TestPlacePolicyRejectionTree:
    def test_rejection_renders_as_cross_node_children(self):
        tel = Telemetry()
        system = make_system(tel)
        policy = TransientPlacement(system)
        server = system.create_server(node=2, name="s")

        def winner():
            yield from policy.move(MoveBlock(0, server))

        run_to_completion(system, winner)

        def loser():
            yield from policy.move(MoveBlock(1, server))

        run_to_completion(system, loser)

        moves = tel.spans_named("move")
        assert [m.tags["outcome"] for m in moves] == ["granted", "rejected"]
        rejected_move = moves[1]

        (locked,) = tel.spans_named("place.locked")
        assert locked.trace_id == rejected_move.trace_id
        spans = by_id(tel)
        # locked hangs under the move root via the request span chain.
        node = locked
        while node.parent_id is not None:
            node = spans[node.parent_id]
        assert node is rejected_move
        # The rejection is tagged at the object's node, the root at the
        # requesting client's — a genuinely cross-node tree.
        assert locked.node != rejected_move.node
        assert locked.tags["holder"]

        assert tel.metrics.counter("migration.rejections", policy="placement").value == 1
        assert tel.metrics.counter("locks.conflicts").value == 1

        closures = tel.spans_named("closure")
        assert len(closures) == 1  # only the granted move computed one
        assert tel.metrics.histogram("migration.closure_size").count == 1
        assert tel.open_spans() == []


class TestDisabledPathIdentity:
    PARAMS = FaultToleranceParameters(
        policy="placement",
        loss=0.05,
        mttf=120.0,
        mttr=30.0,
        sim_time=400.0,
        seed=7,
    )

    def test_results_bit_identical_with_and_without_telemetry(self):
        plain = FaultToleranceWorkload(self.PARAMS).run()
        tel = Telemetry()
        traced = FaultToleranceWorkload(self.PARAMS, telemetry=tel).run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(traced)
        # And the instrumented run actually observed the system.
        assert len(tel.spans) > 0
        assert len(tel.metrics.names()) >= 10

    def test_workload_spans_never_leak(self):
        """Spans never leak open once their operations finish.

        The horizon cuts operations mid-flight, so some spans stay
        legitimately open — but only whole in-flight subtrees: a span
        whose parent already closed would be a leak (the parent's
        cleanup missed it).  And no span may linger open long before
        the horizon: every operation in this stack completes within a
        bounded window.
        """
        tel = Telemetry()
        FaultToleranceWorkload(self.PARAMS, telemetry=tel).run()
        spans = by_id(tel)
        for span in tel.open_spans():
            if span.parent_id is not None:
                assert spans[span.parent_id].is_open, (
                    f"{span.name} leaked open under a closed parent"
                )
        # Closed spans all carry a final status.
        assert all(
            s.status in (OK, ERROR) for s in tel.spans if not s.is_open
        )

    def test_sampler_populates_kernel_gauges(self):
        tel = Telemetry()
        FaultToleranceWorkload(self.PARAMS, telemetry=tel).run()
        depth = tel.metrics.gauge("kernel.queue_depth")
        assert depth.series
        assert tel.metrics.gauge("kernel.events_scheduled").value > 0
        assert tel.metrics.gauge("kernel.sim_time").value > 0
