"""Unit tests for the latency models."""

import numpy as np
import pytest

from repro.network.latency import (
    DeterministicLatency,
    NormalizedExponentialLatency,
    PerHopExponentialLatency,
)
from repro.network.topology import Ring
from repro.sim.rng import RandomStreams


@pytest.fixture
def stream(streams):
    return streams.stream("latency-test")


class TestNormalizedExponential:
    def test_local_is_free(self, stream):
        model = NormalizedExponentialLatency(1.0)
        assert model.sample(2, 2, stream) == 0.0
        assert model.mean(2, 2) == 0.0

    def test_remote_mean(self, stream):
        model = NormalizedExponentialLatency(1.0)
        draws = [model.sample(0, 1, stream) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(1.0, rel=0.05)
        assert model.mean(0, 1) == 1.0

    def test_pair_independent_mean(self, stream):
        model = NormalizedExponentialLatency(2.5)
        assert model.mean(0, 1) == model.mean(5, 9) == 2.5

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            NormalizedExponentialLatency(-1)


class TestPerHop:
    def test_scales_with_hops(self, stream):
        topo = Ring(8)
        model = PerHopExponentialLatency(topo, mean_per_hop=1.0)
        assert model.mean(0, 1) == 1.0
        assert model.mean(0, 4) == 4.0

    def test_sample_mean_matches_hops(self, stream):
        topo = Ring(8)
        model = PerHopExponentialLatency(topo, mean_per_hop=0.5)
        draws = [model.sample(0, 3, stream) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(1.5, rel=0.05)

    def test_local_free(self, stream):
        model = PerHopExponentialLatency(Ring(4))
        assert model.sample(1, 1, stream) == 0.0


class TestDeterministic:
    def test_constant(self, stream):
        model = DeterministicLatency(3.0)
        assert model.sample(0, 1, stream) == 3.0
        assert model.sample(1, 1, stream) == 0.0
        assert model.mean(0, 2) == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicLatency(-0.5)
