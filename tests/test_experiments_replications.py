"""Tests for the independent-replications runner."""

import pytest

from repro.experiments.replications import ReplicatedResult, run_replicated
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_500,
)


class TestReplications:
    def test_default_seed_derivation(self):
        params = SimulationParameters(policy="sedentary", seed=100)
        result = run_replicated(params, replicates=3, stopping=TINY)
        assert result.seeds == (100, 101, 102)
        assert len(result.per_seed) == 3
        assert result.stats.count == 3

    def test_explicit_seeds(self):
        params = SimulationParameters(policy="sedentary")
        result = run_replicated(
            params, stopping=TINY, seeds=(7, 70, 700)
        )
        assert result.seeds == (7, 70, 700)

    def test_replicates_validation(self):
        params = SimulationParameters()
        with pytest.raises(ValueError):
            run_replicated(params, replicates=0, stopping=TINY)
        with pytest.raises(ValueError):
            run_replicated(params, seeds=(), stopping=TINY)

    def test_sedentary_ci_contains_anchor(self):
        """Cross-seed CI of the Fig 8 baseline covers 4/3."""
        params = SimulationParameters(policy="sedentary")
        result = run_replicated(params, replicates=5, stopping=TINY)
        low, high = result.interval(confidence=0.99)
        assert low < 4.0 / 3.0 < high

    def test_seeds_actually_vary(self):
        params = SimulationParameters(policy="migration")
        result = run_replicated(params, replicates=4, stopping=TINY)
        assert len(set(result.per_seed)) > 1

    def test_parallel_matches_serial(self):
        params = SimulationParameters(policy="placement")
        serial = run_replicated(params, replicates=3, stopping=TINY)
        parallel = run_replicated(
            params, replicates=3, stopping=TINY, workers=2
        )
        assert serial.per_seed == parallel.per_seed

    def test_summary_shape(self):
        params = SimulationParameters(policy="sedentary")
        result = run_replicated(params, replicates=3, stopping=TINY)
        summary = result.summary()
        assert set(summary) == {
            "mean",
            "stddev",
            "ci95",
            "replicates",
            "min",
            "max",
        }
        assert summary["replicates"] == 3
        assert summary["min"] <= summary["mean"] <= summary["max"]
