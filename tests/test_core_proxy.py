"""Unit tests for the proxy layer (§3.1's system model)."""

import pytest

from repro.core.policies.placement import TransientPlacement
from repro.core.proxy import Proxy, ProxyTable
from repro.errors import UnknownNodeError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=3,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )


@pytest.fixture
def policy(system):
    return TransientPlacement(system)


@pytest.fixture
def table(system, policy):
    return ProxyTable(system, policy)


def run(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestProxyTable:
    def test_one_proxy_per_node_object_pair(self, system, table):
        server = system.create_server(node=2)
        p1 = table.proxy(0, server)
        p2 = table.proxy(0, server)
        p3 = table.proxy(1, server)
        assert p1 is p2
        assert p1 is not p3
        assert len(table) == 2

    def test_unknown_node_rejected(self, system, table):
        server = system.create_server(node=0)
        with pytest.raises(UnknownNodeError):
            table.proxy(9, server)

    def test_proxies_on_node(self, system, table):
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        table.proxy(2, a)
        table.proxy(2, b)
        table.proxy(0, a)
        assert len(table.proxies_on(2)) == 2
        assert len(table.proxies_on(0)) == 1


class TestProxyCalls:
    def test_invoke_forwards_to_current_location(self, system, table):
        server = system.create_server(node=2)
        proxy = table.proxy(0, server)
        result = run(system, proxy.invoke())
        assert result.duration == pytest.approx(2.0)
        assert proxy.invocations == 1
        assert server.invocation_count == 1

    def test_local_proxy_call_free(self, system, table):
        server = system.create_server(node=1)
        proxy = table.proxy(1, server)
        result = run(system, proxy.invoke())
        assert result.duration == 0.0
        assert proxy.is_local

    def test_invoke_follows_migration(self, system, table, policy):
        server = system.create_server(node=2)
        mover = table.proxy(0, server)
        observer = table.proxy(1, server)
        block = run(system, mover.move())
        assert block.granted
        assert mover.is_local
        assert not observer.is_local
        result = run(system, observer.invoke())
        assert result.duration == pytest.approx(2.0)  # forwarded to node 0


class TestProxyMigrationControl:
    def test_move_and_end_lifecycle(self, system, table):
        server = system.create_server(node=2)
        proxy = table.proxy(0, server)
        block = run(system, proxy.move())
        assert block.granted
        assert server.lock_holder is block
        run(system, proxy.end(block))
        assert server.lock_holder is None

    def test_conflicting_proxy_move_rejected(self, system, table):
        server = system.create_server(node=2)
        winner = table.proxy(0, server)
        loser = table.proxy(1, server)
        run(system, winner.move())
        block = run(system, loser.move())
        assert not block.granted
        assert loser.location() == 0

    def test_end_checks_block_ownership(self, system, table):
        a = system.create_server(node=0)
        b = system.create_server(node=1)
        pa = table.proxy(2, a)
        pb = table.proxy(2, b)
        block = run(system, pa.move())
        with pytest.raises(ValueError, match="belongs to"):
            pb.end(block)

    def test_repr_shows_locality(self, system, table):
        server = system.create_server(node=1)
        assert "local" in repr(table.proxy(1, server))
        assert "remote" in repr(table.proxy(0, server))
