"""Tests for alliance distribution & cooperation policies (§3.4)."""

import pytest

from repro.core.alliance import AllianceManager
from repro.core.distribution import (
    AnchorToMember,
    CollocateMembers,
    DistributionPolicy,
    SpreadMembers,
)
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import AllianceError, UnknownNodeError
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


@pytest.fixture
def system():
    return DistributedSystem(
        nodes=4,
        seed=0,
        migration_duration=6.0,
        latency=DeterministicLatency(1.0),
    )


@pytest.fixture
def alliance_with_members(system):
    manager = AllianceManager()
    alliance = manager.create("team")
    members = [system.create_server(node=i, name=f"m{i}") for i in range(4)]
    for member in members:
        alliance.admit(member)
    return alliance, members


def run(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestCollocate:
    def test_moves_everyone_home(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        policy = CollocateMembers(system, alliance, home_node=2)
        moved = run(system, policy.apply())
        assert moved == 3  # member on node 2 already there
        assert all(m.node_id == 2 for m in members)
        assert policy.relocations == 3

    def test_apply_idempotent(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        policy = CollocateMembers(system, alliance, home_node=2)
        run(system, policy.apply())
        moved = run(system, policy.apply())
        assert moved == 0

    def test_invalid_home_node(self, system, alliance_with_members):
        alliance, _ = alliance_with_members
        with pytest.raises(UnknownNodeError):
            CollocateMembers(system, alliance, home_node=42)

    def test_fixed_member_left_alone(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        members[0].fixed = True
        policy = CollocateMembers(system, alliance, home_node=3)
        run(system, policy.apply())
        assert members[0].node_id == 0  # untouched
        assert all(m.node_id == 3 for m in members[1:])

    def test_locked_member_left_alone(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        locks = LockManager()
        block = MoveBlock(0, members[1])
        locks.lock(members[1], block)
        policy = CollocateMembers(system, alliance, home_node=3)
        run(system, policy.apply())
        assert members[1].node_id == 1  # still where its holder put it


class TestSpread:
    def test_round_robin_over_given_nodes(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        policy = SpreadMembers(system, alliance, nodes=[0, 1])
        run(system, policy.apply())
        assert [m.node_id for m in members] == [0, 1, 0, 1]

    def test_defaults_to_all_nodes(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        policy = SpreadMembers(system, alliance)
        assert policy.nodes == [0, 1, 2, 3]

    def test_empty_node_list_rejected(self, system, alliance_with_members):
        alliance, _ = alliance_with_members
        with pytest.raises(ValueError):
            SpreadMembers(system, alliance, nodes=[])


class TestAnchor:
    def test_follows_anchor(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        anchor = members[2]  # lives on node 2
        policy = AnchorToMember(system, alliance, anchor)
        run(system, policy.apply())
        assert all(m.node_id == 2 for m in members)

    def test_anchor_must_be_member(self, system, alliance_with_members):
        alliance, _ = alliance_with_members
        outsider = system.create_server(node=0)
        with pytest.raises(ValueError, match="not a member"):
            AnchorToMember(system, alliance, outsider)

    def test_advice_excludes_anchor_itself(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        policy = AnchorToMember(system, alliance, members[0])
        advice = policy.advice()
        assert members[0].object_id not in advice


class TestCooperationPolicy:
    def test_unrestricted_by_default(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        outsider = system.create_server(node=0)
        assert alliance.permits(members[0], outsider)

    def test_restriction_blocks_outsiders(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        alliance.restrict_interactions = True
        outsider = system.create_server(node=0)
        assert alliance.permits(members[0], members[1])
        assert not alliance.permits(members[0], outsider)
        assert not alliance.permits(outsider, members[0])

    def test_check_interaction_raises(self, system, alliance_with_members):
        alliance, members = alliance_with_members
        alliance.restrict_interactions = True
        outsider = system.create_server(node=0, name="stranger")
        with pytest.raises(AllianceError, match="cooperation context"):
            alliance.check_interaction(members[0], outsider)
        alliance.check_interaction(members[0], members[1])  # fine
