"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SimulationError,
            errors.EmptySchedule,
            errors.EventAlreadyTriggered,
            errors.ProcessError,
            errors.RuntimeModelError,
            errors.UnknownObjectError,
            errors.UnknownNodeError,
            errors.ObjectFixedError,
            errors.MigrationInProgressError,
            errors.AttachmentError,
            errors.AllianceError,
            errors.PolicyError,
            errors.FaultError,
            errors.MessageLostError,
            errors.TimeoutError,
            errors.NodeDownError,
            errors.MigrationAbortedError,
            errors.ConfigurationError,
            errors.StoppingRuleError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_runtime_errors_grouped(self):
        for exc in (
            errors.UnknownObjectError,
            errors.ObjectFixedError,
            errors.AttachmentError,
            errors.PolicyError,
        ):
            assert issubclass(exc, errors.RuntimeModelError)

    def test_kernel_errors_grouped(self):
        for exc in (errors.EmptySchedule, errors.ProcessError):
            assert issubclass(exc, errors.SimulationError)

    def test_fault_errors_grouped(self):
        # Injected-failure conditions share FaultError (and through it
        # RuntimeModelError) so applications can degrade gracefully
        # with a single except clause.
        for exc in (
            errors.MessageLostError,
            errors.TimeoutError,
            errors.NodeDownError,
            errors.MigrationAbortedError,
        ):
            assert issubclass(exc, errors.FaultError)
            assert issubclass(exc, errors.RuntimeModelError)

    def test_timeout_error_is_not_the_builtin(self):
        # repro.errors.TimeoutError deliberately shadows the builtin
        # inside the package; they must stay distinct types so builtin
        # handlers don't accidentally swallow simulated faults.
        assert errors.TimeoutError is not TimeoutError
        assert not issubclass(errors.TimeoutError, TimeoutError)

    def test_control_flow_signals_not_repro_errors(self):
        # StopSimulation and Interrupt are control flow, not failures:
        # user code catching ReproError must not swallow them.
        assert not issubclass(errors.StopSimulation, errors.ReproError)
        assert not issubclass(errors.Interrupt, errors.ReproError)

    def test_interrupt_carries_cause(self):
        interrupt = errors.Interrupt(cause={"reason": "test"})
        assert interrupt.cause == {"reason": "test"}

    def test_stop_simulation_carries_value(self):
        stop = errors.StopSimulation(42)
        assert stop.value == 42


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_policy_names_match_figures_legends(self):
        # The registry names are what experiment configs reference.
        assert set(repro.POLICIES) == {
            "sedentary",
            "migration",
            "placement",
            "comparing",
            "reinstantiation",
        }

    def test_figures_registry(self):
        assert set(repro.FIGURES) == {
            "fig8",
            "fig10",
            "fig11",
            "fig12",
            "fig14",
            "fig16",
        }

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.fragmentation
        import repro.network
        import repro.replication
        import repro.runtime
        import repro.sim
        import repro.workload

        for module in (
            repro.analysis,
            repro.core,
            repro.experiments,
            repro.fragmentation,
            repro.network,
            repro.replication,
            repro.runtime,
            repro.sim,
            repro.workload,
        ):
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_sub_all_exports_resolve(self):
        import repro.core
        import repro.experiments
        import repro.network
        import repro.replication
        import repro.runtime
        import repro.sim
        import repro.workload

        for module in (
            repro.core,
            repro.experiments,
            repro.network,
            repro.replication,
            repro.runtime,
            repro.sim,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
