"""Tests for the outlook-study sweeps and their CLI integration."""

import pytest

from repro.experiments.cli import main
from repro.experiments.outlook import (
    OUTLOOK_STUDIES,
    availability_sweep,
    faulttolerance_sweep,
    format_outlook_table,
    fragmentation_sweep,
    replication_sweep,
    run_outlook,
)
from repro.sim.stopping import StoppingConfig

TINY = StoppingConfig(
    relative_precision=0.3,
    confidence=0.9,
    batch_size=40,
    warmup=40,
    min_batches=2,
    max_observations=1_200,
)


class TestSweeps:
    def test_replication_shape(self):
        header, rows = replication_sweep(
            stopping=TINY, read_ratios=(0.99, 0.5)
        )
        assert header == ["read_ratio", "none", "eager", "threshold"]
        assert len(rows) == 2
        assert all(len(r) == 4 for r in rows)
        # The qualitative crossover survives even at tiny precision.
        eager_readheavy = rows[0][2]
        eager_writeheavy = rows[1][2]
        assert eager_readheavy < eager_writeheavy

    def test_fragmentation_shape(self):
        header, rows = fragmentation_sweep(
            stopping=TINY, fragment_counts=(1, 4), clients=8
        )
        assert header == ["fragments", "migration", "placement"]
        k1_migration, k4_migration = rows[0][1], rows[1][1]
        assert k4_migration < k1_migration

    def test_availability_shape(self):
        header, rows = availability_sweep(
            stopping=TINY, mixes=(0.0, 1.0)
        )
        assert header == ["group_op_fraction", "collocated", "spread"]
        # Chains favor collocation.
        assert rows[1][1] < rows[1][2]

    def test_faulttolerance_shape(self):
        header, rows = faulttolerance_sweep(
            losses=(0.0, 0.05), sim_time=1_500.0
        )
        assert header == ["loss", "sedentary", "migration", "placement"]
        assert len(rows) == 2
        assert all(len(r) == 4 for r in rows)
        # Every cell produced observations despite crashes and loss.
        assert all(v > 0 for r in rows for v in r[1:])

    def test_registry(self):
        assert set(OUTLOOK_STUDIES) == {
            "replication",
            "fragmentation",
            "availability",
            "faulttolerance",
            "chaos",
            "deploy",
        }

    def test_run_outlook_unknown(self):
        with pytest.raises(ValueError, match="unknown outlook study"):
            run_outlook("teleportation")


class TestFormatting:
    def test_table_layout(self):
        table = format_outlook_table(
            "demo", ["x", "a", "b"], [[1.0, 0.5, 0.25], [2.0, 1.5, 1.25]]
        )
        lines = table.splitlines()
        assert lines[0] == "outlook:demo"
        assert "a" in lines[2] and "b" in lines[2]
        assert "0.500" in table and "1.250" in table


class TestCli:
    def test_outlook_via_cli(self, capsys, monkeypatch):
        monkeypatch.setattr(StoppingConfig, "fast", staticmethod(lambda: TINY))
        rc = main(["replication", "--fast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "outlook:replication" in out
        assert "eager" in out
