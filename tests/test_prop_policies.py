"""Property-based tests for policy invariants under random workloads.

These drive the real client-process machinery with randomized
parameters and assert the safety properties that make the policies
correct, rather than any performance number.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stopping import StoppingConfig
from repro.sim.trace import Tracer
from repro.workload.clientserver import ClientServerWorkload
from repro.workload.params import SimulationParameters

TINY = StoppingConfig(
    relative_precision=0.5,
    confidence=0.9,
    batch_size=30,
    warmup=30,
    min_batches=2,
    max_observations=600,
)

small_cells = st.fixed_dictionaries(
    {
        "nodes": st.integers(min_value=2, max_value=6),
        "clients": st.integers(min_value=1, max_value=6),
        "servers_layer1": st.integers(min_value=1, max_value=4),
        "mean_interblock_time": st.floats(min_value=2.0, max_value=40.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def run_workload(policy, cell, tracer=None):
    params = SimulationParameters(
        policy=policy,
        mean_calls_per_block=8.0,
        migration_duration=6.0,
        **cell,
    )
    workload = ClientServerWorkload(
        params,
        stopping=TINY,
        tracer=tracer if tracer is not None else Tracer(kinds=set()),
    )
    result = workload.run()
    return workload, result


@given(small_cells)
@settings(max_examples=20, deadline=None)
def test_placement_locks_always_drain(cell):
    """After every block ends, no lock leaks: at quiescence points the
    lock ledger only holds objects of still-open blocks."""
    workload, result = run_workload("placement", cell)
    locks = workload.policy.locks
    locks.check_invariant()
    # Every locked object's holder must be an un-ended block.
    for obj in locks.locked_objects():
        assert obj.lock_holder is not None
        assert not obj.lock_holder.ended


@given(small_cells)
@settings(max_examples=20, deadline=None)
def test_registry_consistency_for_every_policy(cell):
    for policy in ("sedentary", "migration", "placement", "comparing"):
        workload, _ = run_workload(policy, cell)
        workload.system.registry.check_consistency()


@given(small_cells)
@settings(max_examples=20, deadline=None)
def test_sedentary_objects_never_move(cell):
    workload, result = run_workload("sedentary", cell)
    assert workload.system.migrations.migration_count == 0
    for server in workload.servers:
        assert server.migration_count == 0


@given(small_cells)
@settings(max_examples=15, deadline=None)
def test_metric_decomposition_identity(cell):
    """comm_time == call_duration + migration_time, always."""
    for policy in ("migration", "placement"):
        _, result = run_workload(policy, cell)
        total = result.mean_communication_time_per_call
        parts = (
            result.mean_call_duration + result.mean_migration_time_per_call
        )
        assert abs(total - parts) < 1e-9


@given(small_cells)
@settings(max_examples=15, deadline=None)
def test_placement_rejections_never_migrate(cell):
    """A rejected move-request must not cause any transfer (§3.2)."""
    tracer = Tracer(kinds={"move.rejected", "move.granted"})
    workload, result = run_workload("placement", cell, tracer=tracer)
    granted = tracer.count("move.granted")
    # Total transfers can only stem from granted moves; each granted
    # move transfers at most the working set (1, no attachments here).
    # A transfer may complete in the instant the run is cut off, before
    # its mover resumes to emit the grant trace — allow one in-flight
    # move per client.
    assert (
        workload.system.migrations.migration_count
        <= granted + cell["clients"]
    )


@given(small_cells)
@settings(max_examples=15, deadline=None)
def test_comparing_counts_never_negative(cell):
    workload, _ = run_workload("comparing", cell)
    for obj_counts in workload.policy._open.values():
        for count in obj_counts.values():
            assert count >= 0
