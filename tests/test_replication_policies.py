"""Unit tests for replication policies and the replication workload."""

import pytest

from repro.errors import ConfigurationError
from repro.network.latency import DeterministicLatency
from repro.replication.policies import (
    REPLICATION_POLICIES,
    EagerReplication,
    NoReplication,
    ThresholdReplication,
    make_replication_policy,
)
from repro.replication.service import ReplicationService
from repro.replication.workload import (
    ReplicationParameters,
    ReplicationWorkload,
    run_replication_cell,
)
from repro.runtime.system import DistributedSystem
from repro.sim.stopping import StoppingConfig

TINY = StoppingConfig(
    relative_precision=0.2,
    confidence=0.9,
    batch_size=50,
    warmup=50,
    min_batches=3,
    max_observations=3_000,
)


@pytest.fixture
def system():
    return DistributedSystem(nodes=4, seed=0, latency=DeterministicLatency(1.0))


@pytest.fixture
def service(system):
    return ReplicationService(system.env, system.network, copy_duration=6.0)


def run(system, fragment):
    def proc(env):
        result = yield from fragment
        return result

    p = system.env.process(proc(system.env))
    system.env.run()
    return p.value


class TestPolicies:
    def test_registry(self, service):
        assert set(REPLICATION_POLICIES) == {"none", "eager", "threshold"}
        for name in REPLICATION_POLICIES:
            assert make_replication_policy(name, service).name == name
        with pytest.raises(ValueError):
            make_replication_policy("quorum", service)

    def test_none_never_replicates(self, system, service):
        policy = NoReplication(service)
        obj = system.create_server(node=0)
        for _ in range(5):
            run(system, policy.read(2, obj))
        assert service.replica_count(obj) == 0

    def test_eager_replicates_on_first_remote_read(self, system, service):
        policy = EagerReplication(service)
        obj = system.create_server(node=0)
        result = run(system, policy.read(2, obj))
        assert service.has_copy(obj, 2)
        assert result.was_local  # served from the fresh replica

    def test_eager_does_not_replicate_locally(self, system, service):
        policy = EagerReplication(service)
        obj = system.create_server(node=0)
        run(system, policy.read(0, obj))
        assert service.replica_count(obj) == 0

    def test_threshold_requires_k_remote_reads(self, system, service):
        policy = ThresholdReplication(service, threshold=2, max_replicas=4)
        obj = system.create_server(node=0)
        run(system, policy.read(2, obj))  # remote #1
        assert service.replica_count(obj) == 0
        run(system, policy.read(2, obj))  # remote #2 -> earned
        run(system, policy.read(2, obj))  # replicates, then local
        assert service.has_copy(obj, 2)

    def test_threshold_cap(self, system, service):
        policy = ThresholdReplication(service, threshold=1, max_replicas=1)
        obj = system.create_server(node=0)
        for node in (1, 2):
            run(system, policy.read(node, obj))
            run(system, policy.read(node, obj))
        assert service.replica_count(obj) == 1

    def test_write_resets_threshold_claims(self, system, service):
        policy = ThresholdReplication(service, threshold=2, max_replicas=4)
        obj = system.create_server(node=0)
        run(system, policy.read(2, obj))
        run(system, policy.read(2, obj))
        run(system, policy.write(0, obj))  # resets claims
        run(system, policy.read(2, obj))  # remote again, count 1 < 2
        assert not service.has_copy(obj, 2)

    def test_threshold_validation(self, service):
        with pytest.raises(ValueError):
            ThresholdReplication(service, threshold=0)
        with pytest.raises(ValueError):
            ThresholdReplication(service, max_replicas=-1)


class TestWorkload:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicationParameters(read_ratio=1.5).validate()
        with pytest.raises(ConfigurationError):
            ReplicationParameters(clients=0).validate()
        ReplicationParameters().validate()

    def test_cell_runs_and_reports(self):
        result = run_replication_cell(
            ReplicationParameters(policy="eager", read_ratio=0.9, seed=1),
            stopping=TINY,
        )
        assert result.mean_op_time > 0
        assert result.raw["operations"] > 0
        assert result.raw["service"]["replications"] > 0

    def test_reproducible(self):
        params = ReplicationParameters(policy="threshold", seed=5)
        a = run_replication_cell(params, stopping=TINY)
        b = run_replication_cell(params, stopping=TINY)
        assert a.mean_op_time == b.mean_op_time

    def test_outlook_shape_read_heavy(self):
        """Eager replication beats no-replication when reads dominate."""
        eager = run_replication_cell(
            ReplicationParameters(policy="eager", read_ratio=0.99, seed=2),
            stopping=TINY,
        )
        none = run_replication_cell(
            ReplicationParameters(policy="none", read_ratio=0.99, seed=2),
            stopping=TINY,
        )
        assert eager.mean_op_time < none.mean_op_time

    def test_outlook_shape_write_heavy(self):
        """The §5 hazard: eager replication LOSES to no replication
        under write-heavy sharing (invalidation thrash)."""
        eager = run_replication_cell(
            ReplicationParameters(policy="eager", read_ratio=0.5, seed=2),
            stopping=TINY,
        )
        none = run_replication_cell(
            ReplicationParameters(policy="none", read_ratio=0.5, seed=2),
            stopping=TINY,
        )
        assert eager.mean_op_time > none.mean_op_time
