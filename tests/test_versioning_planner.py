"""Planner tests: diffing, grouping, staging, determinism.

The planner must be pure (no simulation time, no mutation), must never
split an attachment/alliance group across stages, and must emit
bit-identical plans for identical inputs.
"""

import pytest

from repro.core.alliance import AllianceManager
from repro.errors import ConfigurationError
from repro.runtime.system import DistributedSystem
from repro.versioning.planner import MigrationPlanner, VersionConfig


def build(nodes=4, servers=8):
    system = DistributedSystem(nodes=nodes, seed=0)
    objs = [
        system.create_server(i % nodes, name=f"s{i}") for i in range(servers)
    ]
    return system, objs


class TestVersionConfig:
    def test_resolution_order(self):
        system, objs = build(servers=2)
        client = system.create_client(0, name="c")
        config = VersionConfig.make(
            "t",
            default="v1",
            kinds={"server": "v2"},
            objects={objs[1].object_id: "v3"},
        )
        assert config.version_of(client) == "v1"
        assert config.version_of(objs[0]) == "v2"
        assert config.version_of(objs[1]) == "v3"

    def test_configs_are_values(self):
        a = VersionConfig.make("t", kinds={"server": "v1"}, policy={"k": 1})
        b = VersionConfig.make("t", kinds={"server": "v1"}, policy={"k": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.policy_config() == {"k": "1"}


class TestPlanning:
    def test_noop_plan_is_empty(self):
        system, _ = build()
        plan = MigrationPlanner(system).plan(VersionConfig.make("same"))
        assert plan.is_empty
        assert plan.changed_ids == []
        assert plan.source_digest == plan.target_digest

    def test_plan_covers_every_changed_object_once(self):
        system, objs = build()
        plan = MigrationPlanner(system).plan(
            VersionConfig.make("up", kinds={"server": "v1"}), batch_size=3
        )
        staged = [oid for s in plan.stages for oid in s.object_ids]
        assert sorted(staged) == plan.changed_ids
        assert len(staged) == len(set(staged)) == len(objs)
        for oid in plan.changed_ids:
            assert plan.new_versions[oid] == "v1"
            assert plan.old_versions[oid] == "v0"
            assert plan.old_hashes[oid] != plan.new_hashes[oid]
            assert plan.stage_of(oid) >= 0
        assert plan.stage_of(10_000) == -1

    def test_planner_is_pure(self):
        system, objs = build()
        before = [(o.version, o.node_id) for o in objs]
        MigrationPlanner(system).plan(
            VersionConfig.make("up", kinds={"server": "v1"})
        )
        assert [(o.version, o.node_id) for o in objs] == before
        assert system.env.now == 0.0

    def test_plans_are_deterministic(self):
        target = VersionConfig.make("up", kinds={"server": "v1"})
        plans = []
        for _ in range(2):
            system, _ = build()
            plans.append(MigrationPlanner(system).plan(target))
        assert plans[0].plan_id == plans[1].plan_id
        assert plans[0].to_dict() == plans[1].to_dict()

    def test_bad_batch_size_rejected(self):
        system, _ = build()
        with pytest.raises(ConfigurationError, match="batch_size"):
            MigrationPlanner(system).plan(
                VersionConfig.make("up", kinds={"server": "v1"}),
                batch_size=0,
            )


class TestGrouping:
    def test_attached_objects_stay_in_one_stage(self):
        system, objs = build(servers=6)
        alliances = AllianceManager()
        attachments = alliances.attachments
        attachments.attach(objs[0], objs[3])
        attachments.attach(objs[3], objs[5])
        planner = MigrationPlanner(system, attachments, alliances)
        plan = planner.plan(
            VersionConfig.make("up", kinds={"server": "v1"}), batch_size=2
        )
        chain = {objs[0].object_id, objs[3].object_id, objs[5].object_id}
        stages = {plan.stage_of(oid) for oid in chain}
        assert len(stages) == 1
        # The chain overflows batch_size=2 but is never split.
        stage = plan.stages[stages.pop()]
        assert chain <= set(stage.object_ids)
        assert any(chain == set(g) for g in stage.groups)

    def test_alliance_members_stay_in_one_stage(self):
        system, objs = build(servers=6)
        alliances = AllianceManager()
        ring = alliances.create("ring")
        for obj in (objs[1], objs[2], objs[4]):
            ring.admit(obj)
        planner = MigrationPlanner(
            system, alliances.attachments, alliances
        )
        plan = planner.plan(
            VersionConfig.make("up", kinds={"server": "v1"}), batch_size=2
        )
        stages = {
            plan.stage_of(o.object_id) for o in (objs[1], objs[2], objs[4])
        }
        assert len(stages) == 1

    def test_unchanged_neighbors_do_not_join_the_group(self):
        # An attachment to an object the target does not change must not
        # drag that object into the plan.
        system, objs = build(servers=4)
        alliances = AllianceManager()
        attachments = alliances.attachments
        attachments.attach(objs[0], objs[1])
        target = VersionConfig.make(
            "partial", objects={objs[0].object_id: "v1"}
        )
        plan = MigrationPlanner(system, attachments, alliances).plan(target)
        assert plan.changed_ids == [objs[0].object_id]

    def test_stage_packing_respects_batch_size(self):
        system, _ = build(servers=9)
        plan = MigrationPlanner(system).plan(
            VersionConfig.make("up", kinds={"server": "v1"}), batch_size=4
        )
        # Singleton groups pack greedily: 4 + 4 + 1.
        assert [len(s) for s in plan.stages] == [4, 4, 1]
        assert [s.index for s in plan.stages] == [0, 1, 2]
