"""Documentation-quality meta-tests.

A reproduction is only useful if readable: every public module, class
and function of the library must carry a docstring.  These tests walk
the package and fail on any undocumented public item, keeping the "doc
comments on every public item" deliverable true by construction.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    """Yield every module in the repro package."""
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


def _public_items(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        # Only items defined in this package (not re-imports of stdlib).
        if getattr(obj, "__module__", "").startswith("repro"):
            yield name, obj


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_items(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def _documented_somewhere(cls, name) -> bool:
    """True if the method has a docstring anywhere in the MRO.

    Python does not inherit docstrings onto overrides; by convention an
    override of a documented base method (e.g. each policy's ``move``)
    inherits its contract, so the base's documentation counts.
    """
    for base in cls.__mro__:
        member = vars(base).get(name)
        if member is None:
            continue
        doc = (
            member.fget.__doc__
            if isinstance(member, property) and member.fget
            else getattr(member, "__doc__", None)
        )
        if doc and doc.strip():
            return True
    return False


def test_public_methods_documented():
    """Public methods of public classes carry docstrings too."""
    undocumented = []
    seen = set()
    for module in ALL_MODULES:
        for _, cls in _public_items(module):
            if not inspect.isclass(cls) or cls in seen:
                continue
            seen.add(cls)
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member)
                    or isinstance(member, property)
                ):
                    continue
                if not _documented_somewhere(cls, name):
                    undocumented.append(f"{cls.__module__}.{cls.__name__}.{name}")
    assert not undocumented, (
        f"{len(undocumented)} undocumented public methods: "
        f"{undocumented[:20]}"
    )
