"""Unit tests for the metrics collector (§4.2.1's metric)."""

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.core.moveblock import MoveBlock
from repro.core.policies.sedentary import SedentaryPolicy
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.stopping import StoppingConfig


@pytest.fixture
def target(env):
    return DistributedObject(env, object_id=1, node_id=0)


def block_with(target, durations, migration_cost, granted=True):
    block = MoveBlock(0, target)
    block.granted = granted
    block.migration_cost = migration_cost
    for d in durations:
        block.record_call(d)
    return block


class TestRecording:
    def test_single_block_decomposition(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [1.0, 3.0], migration_cost=6.0))
        assert m.call_count == 2
        assert m.mean_call_duration == pytest.approx(2.0)
        assert m.mean_migration_time_per_call == pytest.approx(3.0)
        assert m.mean_communication_time_per_call == pytest.approx(5.0)

    def test_multiple_blocks_weighted_by_calls(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [2.0], migration_cost=4.0))
        m.record_block(block_with(target, [0.0, 0.0, 0.0], 0.0))
        # durations: 2,0,0,0 -> 0.5 ; migration 4 over 4 calls -> 1.0
        assert m.mean_call_duration == pytest.approx(0.5)
        assert m.mean_migration_time_per_call == pytest.approx(1.0)

    def test_per_call_mean_matches_aggregate(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [1.0, 2.0], migration_cost=6.0))
        m.record_block(block_with(target, [4.0], migration_cost=2.0))
        assert m.per_call.mean == pytest.approx(
            m.mean_communication_time_per_call
        )

    def test_empty_block_cost_not_dropped(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [], migration_cost=7.0))
        m.record_block(block_with(target, [1.0], migration_cost=0.0))
        assert m.empty_blocks == 1
        assert m.unamortized_migration_cost == 7.0
        assert m.mean_migration_time_per_call == pytest.approx(7.0)

    def test_granted_rejected_counters(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [1.0], 0.0, granted=True))
        m.record_block(block_with(target, [1.0], 0.0, granted=False))
        assert m.granted_blocks == 1
        assert m.rejected_blocks == 1

    def test_zero_calls_metrics_are_zero(self):
        m = MetricsCollector()
        assert m.mean_communication_time_per_call == 0.0
        assert m.mean_call_duration == 0.0
        assert m.mean_migration_time_per_call == 0.0


class TestSystemMigrationCost:
    def test_finalize_folds_policy_cost(self, target):
        system = DistributedSystem(nodes=1)
        policy = SedentaryPolicy(system)
        policy.system_migration_cost = 12.0
        m = MetricsCollector()
        m.record_block(block_with(target, [1.0, 1.0], migration_cost=0.0))
        m.finalize(policy)
        assert m.mean_migration_time_per_call == pytest.approx(6.0)


class TestStoppingIntegration:
    def test_stopping_fed_per_call(self, target):
        cfg = StoppingConfig(
            relative_precision=0.5,
            confidence=0.9,
            batch_size=5,
            warmup=0,
            min_batches=2,
            max_observations=100,
        )
        m = MetricsCollector(cfg)
        for _ in range(20):
            m.record_block(block_with(target, [1.0] * 5, migration_cost=0.0))
        assert m.should_stop()
        assert m.stopping.observations == 100

    def test_summary_contains_stopping(self, target):
        m = MetricsCollector()
        m.record_block(block_with(target, [1.0], 0.0))
        summary = m.summary()
        assert "stopping" in summary
        assert summary["calls"] == 1
