"""Deploy-study tests: the three scenarios, end to end.

These are the acceptance tests of the versioned-migration protocol:

* ``clean`` — every stage commits and the graph lands bit-identically
  on the plan's predicted target digest;
* ``crash-coordinator`` — a chaos crash mid-stage forces a checkpoint
  rollback and retry, the deploy still commits, and the always-on
  version-atomicity invariant verified (every monitor round) that no
  object was ever at a hybrid hash;
* ``invariant-violation`` — an induced gate failure rolls the whole
  deployment back and restores the pre-deploy digest bit-identically.
"""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.core import Telemetry
from repro.telemetry.validate import (
    DEPLOY_METRICS,
    DEPLOY_SPAN_SCHEMAS,
    validate_span_doc,
)
from repro.versioning.study import (
    DEPLOY_SCENARIOS,
    DeployStudy,
    DeployStudyParameters,
    deploy_report_markdown,
    deploy_rows,
    run_deploy_study,
)

#: Shorter horizon than the CLI default; still covers every scenario's
#: full deploy (the deploy starts at t=50 and finishes well before).
SIM_TIME = 400.0


def params(scenario, **kw):
    kw.setdefault("sim_time", SIM_TIME)
    return DeployStudyParameters(scenario=scenario, **kw)


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown deploy"):
            DeployStudyParameters(scenario="yolo").validate()

    def test_deploy_must_fall_inside_horizon(self):
        with pytest.raises(ConfigurationError, match="deploy_at"):
            DeployStudyParameters(deploy_at=500.0, sim_time=400.0).validate()

    def test_scenario_registry_is_closed(self):
        assert DEPLOY_SCENARIOS == (
            "clean",
            "crash-coordinator",
            "invariant-violation",
        )


class TestCleanScenario:
    def test_commits_on_target_digest(self):
        result = run_deploy_study(params("clean"))
        d = result.deployment
        assert d.status == "committed"
        assert result.digest_ok
        assert result.survived
        assert d.upgraded == result.changed_objects
        assert d.rollbacks == 0
        assert d.committed_stages == result.plan_stages >= 2
        assert result.invariant_checks > 0

    def test_groups_never_split(self):
        study = DeployStudy(params("clean"))
        servers = study.workload.servers
        # Allied servers 0/1 and attached servers 2/3 share a stage.
        assert study.plan.stage_of(servers[0].object_id) == study.plan.stage_of(
            servers[1].object_id
        )
        assert study.plan.stage_of(servers[2].object_id) == study.plan.stage_of(
            servers[3].object_id
        )

    def test_deterministic_replay(self):
        a = run_deploy_study(params("clean"))
        b = run_deploy_study(params("clean"))
        assert a.deployment.plan_id == b.deployment.plan_id
        assert a.deployment.post_digest == b.deployment.post_digest
        assert a.deployment.to_dict() == b.deployment.to_dict()


class TestCrashScenario:
    def test_crash_mid_stage_retries_and_commits(self):
        result = run_deploy_study(params("crash-coordinator"))
        d = result.deployment
        # The chaos action really fired, mid-stage.
        assert result.injections["deploy_crashes"] == 1
        assert result.injections["crashes_injected"] >= 1
        # The hit stage rolled back to its checkpoint and was retried.
        assert d.stage_rollbacks >= 1
        assert any(s.attempts > 1 for s in d.stages)
        # ...and the deploy still landed on the target, bit-identically.
        assert d.status == "committed"
        assert result.digest_ok
        # The version-atomicity invariant ran all along and never saw a
        # hybrid object — crash, rollback and retry included.
        assert result.survived
        assert result.invariant_checks > 0


class TestViolationScenario:
    def test_full_rollback_restores_pre_digest(self):
        result = run_deploy_study(params("invariant-violation"))
        d = result.deployment
        assert d.status == "rolled-back"
        assert d.rollback_reason == "invariant-violation"
        assert d.full_rollbacks == 1
        # Bit-identical restore of the pre-deploy graph digest.
        assert d.post_digest == d.pre_digest
        assert result.digest_ok
        # The induced gate is a deploy gate, not a monitor invariant:
        # the simulation itself survived.
        assert result.survived
        # The violating stage is on record; every earlier stage
        # committed before the gate fired.
        bad = [s for s in d.stages if s.status == "rolled-back"]
        assert len(bad) == 1
        assert bad[0].index == params("invariant-violation").violate_stage

    def test_every_object_back_on_the_old_version(self):
        study = DeployStudy(params("invariant-violation"))
        study.run()
        for oid in study.plan.changed_ids:
            assert study.system.registry.get(oid).version == "v0"


class TestTelemetry:
    def test_deploy_spans_and_metrics_are_cataloged(self):
        telemetry = Telemetry()
        study = DeployStudy(params("crash-coordinator"), telemetry=telemetry)
        study.run()
        by_name = {}
        for span in telemetry.spans:
            by_name.setdefault(span.name, []).append(span)
        # Every schema-registered deploy span kind appears (the crash
        # scenario exercises rollback too) and carries its tags.
        for name in DEPLOY_SPAN_SCHEMAS:
            assert by_name.get(name), f"no {name!r} spans"
            for span in by_name[name]:
                assert validate_span_doc(span.to_dict()) == []
        # The upgrade spans land on the lanes of the nodes hosting the
        # objects — a cross-node tree, not a coordinator monologue.
        coordinator = study.deployer.coordinator_node
        nodes = {s.node for s in by_name["deploy.upgrade"]}
        assert nodes - {coordinator}
        # All stage/upgrade spans chain up to the single deploy root.
        root = by_name["deploy"][0]
        assert all(
            s.parent_id == root.span_id for s in by_name["deploy.stage"]
        )
        # Every cataloged deploy metric was actually emitted.
        names = set(telemetry.metrics.names())
        for metric in DEPLOY_METRICS:
            assert metric in names


class TestReporting:
    def test_rows_and_markdown(self):
        results = [
            run_deploy_study(params("clean")),
            run_deploy_study(params("invariant-violation")),
        ]
        header, rows = deploy_rows(results)
        assert rows[0][0] == "clean"
        assert rows[0][1] == "committed"
        assert rows[1][1] == "rolled-back"
        assert len(header) == len(rows[0]) == len(rows[1])
        report = deploy_report_markdown(results)
        assert "## Scenario `clean`" in report
        assert "bit-identical ✓" in report
        assert "| stage | objects |" in report
        assert results[0].deployment.plan_id in report
