"""Tests for the invariant monitor and the bounded ring tracer."""

import pytest

from repro.errors import InvariantViolationError, ProcessError
from repro.sim.monitor import InvariantMonitor
from repro.sim.trace import RingTracer


class TestRingTracer:
    def test_capacity_bounds_retention(self):
        tracer = RingTracer(capacity=5)
        for i in range(12):
            tracer.emit(float(i), "evt", i=i)
        assert len(tracer.records) == 5
        # Oldest records were evicted; the tail survives.
        assert tracer.records[0].time == 7.0

    def test_recent_renders_tail(self):
        tracer = RingTracer(capacity=10)
        for i in range(4):
            tracer.emit(float(i), "evt", i=i)
        assert len(tracer.recent()) == 4
        assert len(tracer.recent(2)) == 2
        assert tracer.recent(2)[-1] == str(tracer.records[-1])

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            RingTracer(capacity=0)


class TestInvariantMonitorConfig:
    def test_interval_must_be_positive(self, env):
        with pytest.raises(ValueError, match="interval"):
            InvariantMonitor(env, interval=0)

    def test_duplicate_name_rejected(self, env):
        monitor = InvariantMonitor(env)
        monitor.invariant("x", lambda: True)
        with pytest.raises(ValueError, match="already registered"):
            monitor.invariant("x", lambda: True)

    def test_invariant_names_sorted(self, env):
        monitor = InvariantMonitor(env)
        monitor.invariant("b", lambda: True)
        monitor.invariant("a", lambda: True)
        assert monitor.invariant_names == ["a", "b"]


class TestEvaluation:
    def test_passing_invariants_accumulate_checks(self, env):
        monitor = InvariantMonitor(env, interval=10.0)
        monitor.invariant("truthy", lambda: True)
        monitor.invariant("noney", lambda: None)
        monitor.start()
        env.run(until=100)
        # Checks at t=10..90; the one at t=100 loses to the stop event
        # (URGENT stops fire before ordinary events at the same time).
        assert monitor.checks == 9
        assert monitor.evaluations["truthy"] == 9
        assert monitor.evaluations["noney"] == 9
        assert monitor.violations == []

    def test_false_with_detail_raises(self, env):
        monitor = InvariantMonitor(env)
        monitor.invariant("bad", lambda: (False, "oops: 3 ghosts"))
        with pytest.raises(InvariantViolationError, match="oops: 3 ghosts"):
            monitor.check_now()
        assert len(monitor.violations) == 1

    def test_bare_false_raises(self, env):
        monitor = InvariantMonitor(env)
        monitor.invariant("bad", lambda: False)
        with pytest.raises(InvariantViolationError, match="'bad' violated"):
            monitor.check_now()

    def test_assertion_error_counts_as_failure(self, env):
        def inv():
            assert 1 == 2, "broken math"

        monitor = InvariantMonitor(env)
        monitor.invariant("asserting", inv)
        with pytest.raises(InvariantViolationError, match="broken math"):
            monitor.check_now()

    def test_violation_mid_run_stops_simulation(self, env):
        # The checker runs as a process, so the violation surfaces as
        # a ProcessError wrapping the InvariantViolationError.
        monitor = InvariantMonitor(env, interval=10.0)
        monitor.invariant("time-bound", lambda: env.now < 35)
        monitor.start()
        with pytest.raises(ProcessError) as excinfo:
            env.run(until=100)
        assert isinstance(excinfo.value.__cause__, InvariantViolationError)
        assert env.now == pytest.approx(40.0)


class TestDiagnostics:
    def test_violation_carries_bounded_trace(self, env):
        tracer = RingTracer(capacity=100)
        for i in range(30):
            tracer.emit(float(i), "step", i=i)
        monitor = InvariantMonitor(env, tracer=tracer, trace_limit=5)
        monitor.invariant("bad", lambda: False)
        with pytest.raises(InvariantViolationError) as excinfo:
            monitor.check_now()
        exc = excinfo.value
        assert len(exc.trace) == 5
        assert exc.trace[-1] == str(tracer.records[-1])
        assert "last 5 trace records" in str(exc)

    def test_no_tracer_means_empty_trace(self, env):
        monitor = InvariantMonitor(env)
        monitor.invariant("bad", lambda: False)
        with pytest.raises(InvariantViolationError) as excinfo:
            monitor.check_now()
        assert excinfo.value.trace == ()
